//! Persistence for platform trace sets.
//!
//! A *trace set* bundles per-processor speeds with recorded availability
//! traces — everything needed to replay a platform deterministically (e.g.
//! logs converted from the Failure Trace Archive, or a simulated campaign's
//! availability archived for later inspection). The format is line-oriented
//! text, RLE-compressed, diff-friendly and versioned:
//!
//! ```text
//! # volatile-grid traces v1
//! slots 86400
//! proc 0 w 4
//! u3600 r120 u7200 d600 …
//! proc 1 w 12
//! u86400
//! ```
//!
//! Comments (`#`) and blank lines are ignored outside of run lines.

use crate::processor::ProcessorSpec;
use crate::trace::{RleTrace, Trace};
use vg_des::SlotSpan;

/// A persisted platform recording: speeds plus availability traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSet {
    /// Nominal trace length in slots (traces may individually be shorter;
    /// replay pads per [`crate::source::TailBehavior`]).
    pub slots: u64,
    /// Per-processor `(spec, trace)` in processor order.
    pub entries: Vec<(ProcessorSpec, Trace)>,
}

/// Parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSetParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for TraceSetParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceSetParseError {}

const HEADER: &str = "# volatile-grid traces v1";

impl TraceSet {
    /// Builds a trace set; `slots` defaults to the longest trace.
    #[must_use]
    pub fn new(entries: Vec<(ProcessorSpec, Trace)>) -> Self {
        let slots = entries
            .iter()
            .map(|(_, t)| t.len() as u64)
            .max()
            .unwrap_or(0);
        Self { slots, entries }
    }

    /// Number of processors.
    #[must_use]
    pub fn p(&self) -> usize {
        self.entries.len()
    }

    /// Serializes to the versioned text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("slots {}\n", self.slots));
        for (q, (spec, trace)) in self.entries.iter().enumerate() {
            out.push_str(&format!("proc {q} w {}\n", spec.w));
            out.push_str(&trace.to_rle().to_compact_string());
            out.push('\n');
        }
        out
    }

    /// Parses the text format.
    pub fn from_text(text: &str) -> Result<Self, TraceSetParseError> {
        let err = |line: usize, message: String| TraceSetParseError { line, message };
        let mut lines = text.lines().enumerate().peekable();

        // Header.
        let (n, first) = lines.next().ok_or_else(|| err(1, "empty input".into()))?;
        if first.trim() != HEADER {
            return Err(err(n + 1, format!("expected header {HEADER:?}")));
        }

        let mut slots: Option<u64> = None;
        let mut entries: Vec<(ProcessorSpec, Trace)> = Vec::new();
        while let Some((n, raw)) = lines.next() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            match tokens.next() {
                Some("slots") => {
                    let v: u64 = tokens
                        .next()
                        .ok_or_else(|| err(n + 1, "slots needs a value".into()))?
                        .parse()
                        .map_err(|_| err(n + 1, "slots expects an integer".into()))?;
                    slots = Some(v);
                }
                Some("proc") => {
                    let idx: usize = tokens
                        .next()
                        .ok_or_else(|| err(n + 1, "proc needs an index".into()))?
                        .parse()
                        .map_err(|_| err(n + 1, "proc index must be an integer".into()))?;
                    if idx != entries.len() {
                        return Err(err(
                            n + 1,
                            format!("proc {idx} out of order (expected {})", entries.len()),
                        ));
                    }
                    let w: SlotSpan = match (tokens.next(), tokens.next()) {
                        (Some("w"), Some(v)) => v
                            .parse()
                            .map_err(|_| err(n + 1, "w expects an integer".into()))?,
                        _ => return Err(err(n + 1, "expected `w <speed>`".into())),
                    };
                    if w == 0 {
                        return Err(err(n + 1, "w must be ≥ 1".into()));
                    }
                    // Next non-comment line is the RLE trace.
                    let (rn, run_line) = loop {
                        match lines.next() {
                            Some((rn, l)) => {
                                let t = l.trim();
                                if t.is_empty() || t.starts_with('#') {
                                    continue;
                                }
                                break (rn, t.to_string());
                            }
                            None => {
                                return Err(err(n + 1, format!("proc {idx} has no trace line")))
                            }
                        }
                    };
                    let rle = RleTrace::parse(&run_line)
                        .map_err(|e| err(rn + 1, format!("bad trace: {e}")))?;
                    entries.push((ProcessorSpec::new(w), rle.to_dense()));
                }
                Some(other) => {
                    return Err(err(n + 1, format!("unknown directive {other:?}")));
                }
                None => unreachable!("trimmed non-empty line has a token"),
            }
        }
        let slots = slots.ok_or_else(|| err(1, "missing `slots` directive".into()))?;
        Ok(Self { slots, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vg_markov::ProcState;

    fn t(s: &str) -> Trace {
        Trace::parse(s).unwrap()
    }

    fn sample() -> TraceSet {
        TraceSet::new(vec![
            (ProcessorSpec::new(4), t("uuurrduu")),
            (ProcessorSpec::new(12), t("uuuuuuuu")),
        ])
    }

    #[test]
    fn text_roundtrip() {
        let ts = sample();
        let text = ts.to_text();
        let back = TraceSet::from_text(&text).unwrap();
        assert_eq!(back, ts);
    }

    #[test]
    fn format_is_human_readable() {
        let text = sample().to_text();
        assert!(text.starts_with(HEADER));
        assert!(text.contains("slots 8"));
        assert!(text.contains("proc 0 w 4"));
        assert!(text.contains("u3 r2 d1 u2"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text =
            format!("{HEADER}\n# a comment\n\nslots 4\nproc 0 w 2\n# trace follows\nu2 r2\n");
        let ts = TraceSet::from_text(&text).unwrap();
        assert_eq!(ts.p(), 1);
        assert_eq!(ts.entries[0].1, t("uurr"));
    }

    #[test]
    fn missing_header_rejected() {
        let e = TraceSet::from_text("slots 4\n").unwrap_err();
        assert!(e.message.contains("header"), "{e}");
    }

    #[test]
    fn missing_slots_rejected() {
        let e = TraceSet::from_text(&format!("{HEADER}\nproc 0 w 1\nu4\n")).unwrap_err();
        assert!(e.message.contains("slots"), "{e}");
    }

    #[test]
    fn out_of_order_proc_rejected() {
        let e = TraceSet::from_text(&format!("{HEADER}\nslots 4\nproc 1 w 1\nu4\n")).unwrap_err();
        assert!(e.message.contains("out of order"), "{e}");
    }

    #[test]
    fn bad_speed_rejected() {
        let e = TraceSet::from_text(&format!("{HEADER}\nslots 4\nproc 0 w 0\nu4\n")).unwrap_err();
        assert!(e.message.contains('w'), "{e}");
    }

    #[test]
    fn missing_trace_line_rejected() {
        let e = TraceSet::from_text(&format!("{HEADER}\nslots 4\nproc 0 w 1\n")).unwrap_err();
        assert!(e.message.contains("no trace"), "{e}");
    }

    #[test]
    fn garbage_directive_rejected() {
        let e = TraceSet::from_text(&format!("{HEADER}\nslots 4\nbogus\n")).unwrap_err();
        assert!(e.message.contains("unknown directive"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn slots_default_is_longest_trace() {
        let ts = TraceSet::new(vec![
            (ProcessorSpec::new(1), t("uu")),
            (ProcessorSpec::new(1), t("uuuuu")),
        ]);
        assert_eq!(ts.slots, 5);
        let empty = TraceSet::new(vec![]);
        assert_eq!(empty.slots, 0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            specs in proptest::collection::vec((1u64..50, proptest::collection::vec(0usize..3, 1..100)), 0..6)
        ) {
            let entries: Vec<(ProcessorSpec, Trace)> = specs
                .iter()
                .map(|(w, codes)| {
                    let trace: Trace = codes.iter().map(|&c| ProcState::from_index(c)).collect();
                    (ProcessorSpec::new(*w), trace)
                })
                .collect();
            let ts = TraceSet::new(entries);
            let back = TraceSet::from_text(&ts.to_text()).unwrap();
            prop_assert_eq!(back, ts);
        }
    }
}
