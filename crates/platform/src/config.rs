//! Declarative platform and application configuration.
//!
//! Everything the simulator needs is carried by two plain-data structs:
//! [`PlatformConfig`] (processors, availability models, master channels) and
//! [`AppConfig`] (tasks per iteration, iteration count, transfer times).
//! Both derive `serde` traits so downstream users can persist them in any
//! serde format.

use serde::{Deserialize, Serialize};
use vg_des::rng::StreamRng;
use vg_des::SlotSpan;
use vg_markov::availability::AvailabilityChain;
use vg_markov::semi_markov::SemiMarkovModel;

use crate::processor::ProcessorSpec;
use crate::source::{
    markov_source, semi_markov_source, AvailabilitySource, ReplaySource, StartPolicy, TailBehavior,
};
use crate::trace::Trace;

/// Configuration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Which stochastic (or recorded) process drives a processor's availability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AvailabilityModelConfig {
    /// The paper's 3-state Markov chain.
    Markov {
        /// Transition matrix.
        chain: AvailabilityChain,
        /// Initial-state policy.
        start: StartPolicy,
    },
    /// Semi-Markov process with arbitrary sojourn distributions
    /// (robustness experiments; Section 8 future work).
    SemiMarkov {
        /// The model.
        model: SemiMarkovModel,
        /// Initial-state policy.
        start: StartPolicy,
    },
    /// Replay of a fixed trace (off-line instances, archive logs).
    Replay {
        /// The recorded states.
        trace: Trace,
        /// Behaviour beyond the end of the trace.
        tail: TailBehavior,
    },
}

impl AvailabilityModelConfig {
    /// Instantiates the per-slot state source. `rng` is consumed even by the
    /// deterministic replay variant so that callers can treat all variants
    /// uniformly (replay simply ignores it).
    #[must_use]
    pub fn build_source(&self, rng: StreamRng) -> Box<dyn AvailabilitySource> {
        match self {
            Self::Markov { chain, start } => markov_source(chain.clone(), *start, rng),
            Self::SemiMarkov { model, start } => semi_markov_source(model.clone(), *start, rng),
            Self::Replay { trace, tail } => Box::new(ReplaySource::new(trace.clone(), *tail)),
        }
    }

    /// The true Markov chain, when this model is Markov.
    #[must_use]
    pub fn markov_chain(&self) -> Option<&AvailabilityChain> {
        match self {
            Self::Markov { chain, .. } => Some(chain),
            _ => None,
        }
    }
}

/// A mild default belief used when the scheduler has no information about a
/// processor: mostly UP, occasional reclamations, rare failures.
///
/// Exposed so tests and documentation can reference the exact values.
#[must_use]
pub fn default_belief() -> AvailabilityChain {
    AvailabilityChain::new([[0.95, 0.04, 0.01], [0.45, 0.50, 0.05], [0.45, 0.05, 0.50]])
        .expect("static matrix is stochastic")
}

/// One processor: speed, true availability process, and (optionally) the
/// chain parameters the *scheduler believes*, which the Section 5/6 formulas
/// consume.
///
/// Separating truth from belief is what lets the harness study model
/// mis-specification: run reality as semi-Markov Weibull while the scheduler
/// still reasons with a fitted Markov chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorConfig {
    /// Static characteristics (`w_q`).
    pub spec: ProcessorSpec,
    /// True availability process.
    pub avail: AvailabilityModelConfig,
    /// Scheduler's model of this processor. `None` means: use the true chain
    /// if `avail` is Markov, otherwise fall back to [`default_belief`].
    pub believed: Option<AvailabilityChain>,
}

impl ProcessorConfig {
    /// Convenience constructor for the common Markov case where belief is
    /// the truth (the paper's setting).
    #[must_use]
    pub fn markov(w: SlotSpan, chain: AvailabilityChain, start: StartPolicy) -> Self {
        Self {
            spec: ProcessorSpec::new(w),
            avail: AvailabilityModelConfig::Markov { chain, start },
            believed: None,
        }
    }

    /// The chain the scheduler should use for this processor.
    #[must_use]
    pub fn believed_chain(&self) -> AvailabilityChain {
        if let Some(b) = &self.believed {
            return b.clone();
        }
        self.avail
            .markov_chain()
            .cloned()
            .unwrap_or_else(default_belief)
    }
}

/// The platform: processors plus the master's channel capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// All processors (`p = processors.len()`).
    pub processors: Vec<ProcessorConfig>,
    /// `ncom = BW / bw`: maximum simultaneous master transfers.
    pub ncom: usize,
}

/// Upper bound on the platform size: processor identities are dense `u32`
/// indices ([`crate::ProcessorId`]), and the simulator builds scheduler
/// snapshots with `ProcessorId(q as u32)` — a platform with more
/// processors would silently truncate ids into aliases. The bound is
/// enforced once by [`PlatformConfig::validate`] (every simulation entry
/// point validates), so downstream casts are infallible.
pub const MAX_PROCESSORS: usize = u32::MAX as usize;

/// Validates a processor count against `1..=`[`MAX_PROCESSORS`].
///
/// Factored out of [`PlatformConfig::validate`] so the upper bound is
/// testable without materializing four billion processor configs.
pub fn validate_processor_count(p: usize) -> Result<(), ConfigError> {
    if p == 0 {
        return Err(ConfigError("platform has no processors".into()));
    }
    if p > MAX_PROCESSORS {
        return Err(ConfigError(format!(
            "{p} processors exceed the maximum of {MAX_PROCESSORS} \
             (processor ids are u32 indices)"
        )));
    }
    Ok(())
}

impl PlatformConfig {
    /// Number of processors `p`.
    #[must_use]
    pub fn p(&self) -> usize {
        self.processors.len()
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        validate_processor_count(self.processors.len())?;
        if self.ncom == 0 {
            return Err(ConfigError("ncom must be ≥ 1".into()));
        }
        for (i, p) in self.processors.iter().enumerate() {
            if p.spec.w == 0 {
                return Err(ConfigError(format!("processor {i} has w = 0")));
            }
        }
        Ok(())
    }
}

/// The application: `m` tasks per iteration, iteration count, transfer times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppConfig {
    /// `m`: independent, same-size tasks per iteration (Section 3.1).
    pub tasks_per_iteration: usize,
    /// Number of iterations to complete (the experiments fix 10 and measure
    /// makespan; Section 7).
    pub iterations: u64,
    /// `T_prog = V_prog / bw`: slots to transfer the program.
    pub t_prog: SlotSpan,
    /// `T_data = V_data / bw`: slots to transfer one task's input.
    /// May be zero (the Theorem-1 reduction uses `T_data = 0`); zero-length
    /// transfers complete instantly and consume no channel.
    pub t_data: SlotSpan,
}

impl AppConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tasks_per_iteration == 0 {
            return Err(ConfigError("application needs at least one task".into()));
        }
        if self.iterations == 0 {
            return Err(ConfigError(
                "application needs at least one iteration".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_des::rng::SeedPath;
    use vg_markov::ProcState;

    fn chain() -> AvailabilityChain {
        AvailabilityChain::new([[0.9, 0.05, 0.05], [0.1, 0.85, 0.05], [0.05, 0.05, 0.9]]).unwrap()
    }

    #[test]
    fn markov_config_builds_source() {
        let cfg = AvailabilityModelConfig::Markov {
            chain: chain(),
            start: StartPolicy::Up,
        };
        let mut src = cfg.build_source(SeedPath::root(1).rng());
        assert_eq!(src.next_state(), ProcState::Up);
        assert!(cfg.markov_chain().is_some());
    }

    #[test]
    fn replay_config_ignores_rng() {
        let cfg = AvailabilityModelConfig::Replay {
            trace: Trace::parse("ud").unwrap(),
            tail: TailBehavior::HoldLast,
        };
        let mut a = cfg.build_source(SeedPath::root(1).rng());
        let mut b = cfg.build_source(SeedPath::root(999).rng());
        for _ in 0..4 {
            assert_eq!(a.next_state(), b.next_state());
        }
        assert!(cfg.markov_chain().is_none());
    }

    #[test]
    fn believed_chain_resolution() {
        // Markov without explicit belief: truth.
        let p = ProcessorConfig::markov(2, chain(), StartPolicy::Up);
        assert_eq!(p.believed_chain(), chain());

        // Explicit belief wins.
        let mut p2 = p.clone();
        p2.believed = Some(default_belief());
        assert_eq!(p2.believed_chain(), default_belief());

        // Non-Markov without belief: default.
        let p3 = ProcessorConfig {
            spec: ProcessorSpec::new(1),
            avail: AvailabilityModelConfig::Replay {
                trace: Trace::parse("u").unwrap(),
                tail: TailBehavior::HoldLast,
            },
            believed: None,
        };
        assert_eq!(p3.believed_chain(), default_belief());
    }

    #[test]
    fn platform_validation() {
        let ok = PlatformConfig {
            processors: vec![ProcessorConfig::markov(1, chain(), StartPolicy::Up)],
            ncom: 1,
        };
        assert!(ok.validate().is_ok());
        assert_eq!(ok.p(), 1);

        let empty = PlatformConfig {
            processors: vec![],
            ncom: 1,
        };
        assert!(empty.validate().is_err());

        let no_channels = PlatformConfig {
            processors: ok.processors.clone(),
            ncom: 0,
        };
        assert!(no_channels.validate().is_err());
    }

    #[test]
    fn processor_count_bounded_by_u32_ids() {
        // Regression for the silent `ProcessorId(q as u32)` truncation: the
        // count check must reject anything past MAX_PROCESSORS (tested on
        // the factored-out check — four billion configs don't fit in a
        // test).
        assert!(validate_processor_count(1).is_ok());
        assert!(validate_processor_count(MAX_PROCESSORS).is_ok());
        assert!(validate_processor_count(0).is_err());
        if let Some(too_many) = MAX_PROCESSORS.checked_add(1) {
            let err = validate_processor_count(too_many).unwrap_err();
            assert!(err.0.contains("u32"), "unhelpful message: {err}");
        }
    }

    #[test]
    fn app_validation() {
        let ok = AppConfig {
            tasks_per_iteration: 5,
            iterations: 10,
            t_prog: 5,
            t_data: 1,
        };
        assert!(ok.validate().is_ok());
        assert!(AppConfig {
            tasks_per_iteration: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(AppConfig {
            iterations: 0,
            ..ok
        }
        .validate()
        .is_err());
        // T_data = 0 is legal (Theorem-1 reduction instances).
        assert!(AppConfig { t_data: 0, ..ok }.validate().is_ok());
    }

    #[test]
    fn default_belief_is_valid_and_optimistic() {
        let b = default_belief();
        assert!(b.p_uu() >= 0.9);
        let pi = b.stationary();
        assert!(pi[0] > 0.8, "default belief should be mostly UP: {pi:?}");
    }
}
