//! The bounded multi-port communication model (Section 3.2).
//!
//! The master owns a network card of capacity `BW`; each worker transfer runs
//! at a fixed bandwidth `bw`, so at most `ncom = BW / bw` transfers can be
//! served in any slot, and `n_prog + n_data ≤ ncom` must hold where `n_prog`
//! counts program transfers and `n_data` counts task-input transfers.
//!
//! [`BandwidthLedger`] enforces the constraint one slot at a time and keeps
//! utilization statistics; the simulator opens a fresh slot each tick and the
//! invariant checker reads the counters.

/// What a granted channel carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// The application program (`V_prog` bytes, `T_prog` slots).
    Program,
    /// One task's input data (`V_data` bytes, `T_data` slots).
    Data,
}

/// Per-slot accounting of the master's outgoing channels.
#[derive(Debug, Clone)]
pub struct BandwidthLedger {
    ncom: usize,
    granted_prog: usize,
    granted_data: usize,
    // Cumulative statistics across slots.
    slots_opened: u64,
    total_granted: u64,
    total_prog: u64,
    total_data: u64,
}

impl BandwidthLedger {
    /// Creates a ledger for a master with `ncom` channels.
    ///
    /// # Panics
    /// Panics if `ncom == 0` — the master must be able to talk to at least
    /// one worker.
    #[must_use]
    pub fn new(ncom: usize) -> Self {
        assert!(ncom >= 1, "master needs at least one channel");
        Self {
            ncom,
            granted_prog: 0,
            granted_data: 0,
            slots_opened: 0,
            total_granted: 0,
            total_prog: 0,
            total_data: 0,
        }
    }

    /// Capacity `ncom`.
    #[must_use]
    pub fn ncom(&self) -> usize {
        self.ncom
    }

    /// Starts a new slot: releases all channels (transfers re-arbitrate
    /// every slot; a suspended worker must not hold a channel).
    pub fn open_slot(&mut self) {
        self.granted_prog = 0;
        self.granted_data = 0;
        self.slots_opened += 1;
    }

    /// Channels still free this slot.
    #[must_use]
    pub fn available(&self) -> usize {
        self.ncom - self.granted_prog - self.granted_data
    }

    /// Attempts to grant a channel; returns whether it was granted.
    pub fn try_grant(&mut self, kind: TransferKind) -> bool {
        if self.available() == 0 {
            return false;
        }
        match kind {
            TransferKind::Program => {
                self.granted_prog += 1;
                self.total_prog += 1;
            }
            TransferKind::Data => {
                self.granted_data += 1;
                self.total_data += 1;
            }
        }
        self.total_granted += 1;
        true
    }

    /// Program channels granted this slot (`n_prog`).
    #[must_use]
    pub fn granted_prog(&self) -> usize {
        self.granted_prog
    }

    /// Data channels granted this slot (`n_data`).
    #[must_use]
    pub fn granted_data(&self) -> usize {
        self.granted_data
    }

    /// The Section 3.2 invariant: `n_prog + n_data ≤ ncom`.
    #[must_use]
    pub fn invariant_holds(&self) -> bool {
        self.granted_prog + self.granted_data <= self.ncom
    }

    /// Mean fraction of channels in use per opened slot.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.slots_opened == 0 {
            return 0.0;
        }
        self.total_granted as f64 / (self.slots_opened as f64 * self.ncom as f64)
    }

    /// Cumulative `(program, data)` channel-slots granted.
    #[must_use]
    pub fn totals(&self) -> (u64, u64) {
        (self.total_prog, self.total_data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_up_to_capacity() {
        let mut l = BandwidthLedger::new(2);
        l.open_slot();
        assert!(l.try_grant(TransferKind::Program));
        assert!(l.try_grant(TransferKind::Data));
        assert!(!l.try_grant(TransferKind::Data));
        assert_eq!(l.available(), 0);
        assert!(l.invariant_holds());
    }

    #[test]
    fn open_slot_releases_channels() {
        let mut l = BandwidthLedger::new(1);
        l.open_slot();
        assert!(l.try_grant(TransferKind::Data));
        assert_eq!(l.available(), 0);
        l.open_slot();
        assert_eq!(l.available(), 1);
        assert!(l.try_grant(TransferKind::Program));
    }

    #[test]
    fn counts_split_by_kind() {
        let mut l = BandwidthLedger::new(3);
        l.open_slot();
        l.try_grant(TransferKind::Program);
        l.try_grant(TransferKind::Data);
        l.try_grant(TransferKind::Data);
        assert_eq!(l.granted_prog(), 1);
        assert_eq!(l.granted_data(), 2);
        assert_eq!(l.totals(), (1, 2));
    }

    #[test]
    fn utilization_statistics() {
        let mut l = BandwidthLedger::new(2);
        l.open_slot(); // 2/2 used
        l.try_grant(TransferKind::Data);
        l.try_grant(TransferKind::Data);
        l.open_slot(); // 0/2 used
        assert!((l.mean_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_empty_is_zero() {
        let l = BandwidthLedger::new(4);
        assert_eq!(l.mean_utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_capacity_rejected() {
        let _ = BandwidthLedger::new(0);
    }
}
