//! Composable volatility: scripted overlays and correlated failure models.
//!
//! Three layers, all meeting the same source interfaces so they compose
//! with everything the engine already runs:
//!
//! * [`ScriptedOverlay`] — applies a [`CompiledScript`] to sampled state
//!   rows *after* the base source has drawn them. The base
//!   stream (and its RNG schedule) is untouched, so an empty script is
//!   **byte-identical passthrough** — the same contract as the per-source
//!   wrappers of [`CompiledScript::wrap_sources`](crate::fault::CompiledScript::wrap_sources),
//!   lifted to whole rows so one overlay serves any backend (boxed sources,
//!   dense bank, shared trace matrix).
//! * [`CorrelatedModel`] / [`CorrelatedSource`] — per-worker base chains
//!   modulated by shared group-level `Normal ⇄ Outage` chains
//!   ([`OutageChain`]) plus an optional diurnal phase: O(groups + p) per
//!   slot, allocation-free in steady state. Identity modulators and no
//!   diurnal spec reproduce the independent model bit for bit (group draws
//!   come from their own seed streams, so worker streams never shift).
//! * FTA-style trace import ([`crate::trace_io::TraceSet::from_fta_text`])
//!   feeds recorded real-world volatility into the same replay path.

use vg_des::rng::{SeedPath, StreamRng};
use vg_markov::availability::ProcState;
use vg_markov::modulator::{ModState, OutageChain};

use crate::config::{ConfigError, PlatformConfig};
use crate::fault::CompiledScript;
use crate::source::{AvailabilitySource, MarkovSourceBank, RowSource};

/// Row-level scripted fault injector: forces the scripted states onto each
/// sampled row and counts how many worker-slots it actually changed.
///
/// The count only increments when the forced state *differs* from what the
/// base sampled — a `kill` hitting an already-`DOWN` worker injects
/// nothing. A passthrough script therefore reports zero injected faults and
/// leaves every row untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedOverlay {
    script: CompiledScript,
    injected: u64,
}

impl ScriptedOverlay {
    /// Wraps a compiled script.
    #[must_use]
    pub fn new(script: CompiledScript) -> Self {
        Self {
            script,
            injected: 0,
        }
    }

    /// Platform size the script was compiled against.
    #[must_use]
    pub fn p(&self) -> usize {
        self.script.p()
    }

    /// True when the overlay can never change a row.
    #[must_use]
    pub fn is_passthrough(&self) -> bool {
        self.script.is_passthrough()
    }

    /// Worker-slots changed so far.
    #[must_use]
    pub fn injected_faults(&self) -> u64 {
        self.injected
    }

    /// Forces the scripted states onto `row` (the sampled states of `slot`,
    /// one per worker) and returns how many entries this call changed.
    /// Allocation-free; spans are sorted by start, so the scan exits at the
    /// first span starting beyond `slot`.
    pub fn apply_row(&mut self, slot: u64, row: &mut [ProcState]) -> u64 {
        debug_assert_eq!(row.len(), self.script.p());
        let mut changed = 0u64;
        for span in self.script.spans() {
            if span.start > slot {
                break;
            }
            if slot >= span.end {
                continue;
            }
            for &q in &span.workers {
                let cell = &mut row[q as usize];
                if *cell != span.state {
                    *cell = span.state;
                    changed += 1;
                }
            }
        }
        self.injected += changed;
        changed
    }
}

/// Diurnal phase modulation: every group has a periodic "off" window during
/// which its `UP` workers are demoted to `RECLAIMED` (owners using their
/// machines), staggered across groups like timezones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiurnalSpec {
    /// Cycle length in slots (a "day").
    pub period: u64,
    /// Leading window of each cycle during which the group is off.
    pub off_len: u64,
    /// Per-group phase shift in slots (group `g` is shifted by `g·stagger`).
    pub group_stagger: u64,
}

impl DiurnalSpec {
    /// Validates the spec: a cycle must be longer than its off window
    /// (otherwise the platform never wakes up).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.period == 0 {
            return Err(ConfigError("diurnal period must be ≥ 1".into()));
        }
        if self.off_len >= self.period {
            // tidy:allow(hot_alloc): validation error path, before any slot runs.
            return Err(ConfigError(format!(
                "diurnal off window {} must be shorter than the period {}",
                self.off_len, self.period
            )));
        }
        Ok(())
    }

    /// True when group `g` is in its off window at `slot`.
    #[must_use]
    pub fn is_off(&self, group: usize, slot: u64) -> bool {
        let shift = (group as u64).wrapping_mul(self.group_stagger);
        (slot.wrapping_add(shift)) % self.period < self.off_len
    }
}

/// One worker group of a correlated model: a contiguous member range driven
/// by one shared outage chain.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    /// Member worker indices, half-open.
    pub members: std::ops::Range<u32>,
    /// The group's shared `Normal ⇄ Outage` chain.
    pub outage: OutageChain,
}

/// Declarative correlated-volatility model: groups × outage chains,
/// optionally with diurnal phase modulation on top.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CorrelatedModel {
    /// Worker groups (may be empty: base model only).
    pub groups: Vec<GroupSpec>,
    /// Optional diurnal phase modulation, applied per group.
    pub diurnal: Option<DiurnalSpec>,
}

impl CorrelatedModel {
    /// `n_groups` near-equal contiguous groups covering `0..p`, all driven
    /// by (independent copies of) the same outage chain.
    #[must_use]
    pub fn uniform_groups(p: usize, n_groups: usize, outage: OutageChain) -> Self {
        let n = n_groups.clamp(1, p.max(1));
        let groups = (0..n)
            .map(|g| GroupSpec {
                members: ((g * p) / n) as u32..(((g + 1) * p) / n) as u32,
                outage,
            })
            .collect(); // tidy:allow(hot_alloc): model construction, not the sampling path.
        Self {
            groups,
            diurnal: None,
        }
    }

    /// Validates the model against a platform of `p` workers.
    pub fn validate(&self, p: usize) -> Result<(), ConfigError> {
        for (g, spec) in self.groups.iter().enumerate() {
            if spec.members.start >= spec.members.end {
                // tidy:allow(hot_alloc): validation error path, before any slot runs.
                return Err(ConfigError(format!(
                    "group {g} has an empty member range {}..{}",
                    spec.members.start, spec.members.end
                )));
            }
            if spec.members.end as usize > p {
                // tidy:allow(hot_alloc): validation error path, before any slot runs.
                return Err(ConfigError(format!(
                    "group {g} spans {}..{} but the platform has only {p} workers",
                    spec.members.start, spec.members.end
                )));
            }
        }
        if let Some(d) = &self.diurnal {
            d.validate()?;
        }
        Ok(())
    }

    /// Instantiates the row source for `platform`, seeding the per-worker
    /// base exactly as the engine's independent path does
    /// (`trace_seeds.child(q)`) and each group modulator from its own
    /// stream (`trace_seeds.child_str("corr-group").child(g)`).
    ///
    /// Because group draws never touch the worker streams, a model whose
    /// chains are all [`OutageChain::identity`] (and no diurnal spec) emits
    /// rows byte-identical to the unmodulated base.
    pub fn build(
        &self,
        platform: &PlatformConfig,
        trace_seeds: &SeedPath,
    ) -> Result<CorrelatedSource, ConfigError> {
        platform.validate()?;
        self.validate(platform.p())?;
        let base = match MarkovSourceBank::try_from_platform(platform, trace_seeds) {
            Some(bank) => BaseBank::Dense(bank),
            None => BaseBank::Boxed(
                platform
                    .processors
                    .iter()
                    .enumerate()
                    .map(|(q, pc)| pc.avail.build_source(trace_seeds.child(q as u64).rng()))
                    // tidy:allow(hot_alloc): one-time construction fallback, not the sampling path.
                    .collect(),
            ),
        };
        let group_seeds = trace_seeds.child_str("corr-group");
        let groups = self
            .groups
            .iter()
            .enumerate()
            .map(|(g, spec)| GroupRuntime {
                members: spec.members.start..spec.members.end,
                outage: spec.outage,
                state: ModState::Normal,
                rng: group_seeds.child(g as u64).rng(),
            })
            .collect(); // tidy:allow(hot_alloc): one-time construction, not the sampling path.
        Ok(CorrelatedSource {
            p: platform.p(),
            base,
            groups,
            diurnal: self.diurnal,
            slot: 0,
        })
    }
}

/// The per-worker base generator of a [`CorrelatedSource`].
enum BaseBank {
    /// All-Markov platform: the dense bank.
    Dense(MarkovSourceBank),
    /// Mixed platform: boxed per-worker sources.
    Boxed(Vec<Box<dyn AvailabilitySource>>),
}

impl std::fmt::Debug for BaseBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Dense(bank) => f.debug_tuple("Dense").field(&bank.p()).finish(),
            Self::Boxed(srcs) => f.debug_tuple("Boxed").field(&srcs.len()).finish(),
        }
    }
}

/// Live state of one group modulator.
#[derive(Debug)]
struct GroupRuntime {
    members: std::ops::Range<u32>,
    outage: OutageChain,
    state: ModState,
    rng: StreamRng,
}

/// A whole-row availability source with correlated group failures: the
/// instantiated form of [`CorrelatedModel`]. Per slot: one base draw per
/// worker, one modulator draw per group, zero allocations.
#[derive(Debug)]
pub struct CorrelatedSource {
    p: usize,
    base: BaseBank,
    groups: Vec<GroupRuntime>,
    diurnal: Option<DiurnalSpec>,
    slot: u64,
}

impl CorrelatedSource {
    /// Slots emitted so far.
    #[must_use]
    pub fn slots_emitted(&self) -> u64 {
        self.slot
    }
}

impl RowSource for CorrelatedSource {
    fn p(&self) -> usize {
        self.p
    }

    fn next_row_into(&mut self, out: &mut Vec<ProcState>) {
        let start = out.len();
        match &mut self.base {
            BaseBank::Dense(bank) => bank.next_row_into(out),
            BaseBank::Boxed(srcs) => {
                out.reserve(srcs.len());
                for src in srcs.iter_mut() {
                    out.push(src.next_state());
                }
            }
        }
        let row = &mut out[start..];
        for (g, grp) in self.groups.iter_mut().enumerate() {
            // Current modulator state applies to this slot (groups start
            // Normal, like workers start from their configured policy);
            // then advance — always exactly one draw from the group's own
            // stream, so worker streams never shift.
            if grp.state.is_outage() {
                for q in grp.members.start..grp.members.end {
                    row[q as usize] = ProcState::Down;
                }
            } else if let Some(d) = &self.diurnal {
                if d.is_off(g, self.slot) {
                    for q in grp.members.start..grp.members.end {
                        if row[q as usize] == ProcState::Up {
                            row[q as usize] = ProcState::Reclaimed;
                        }
                    }
                }
            }
            grp.state = grp.outage.sample_next(grp.state, &mut grp.rng);
        }
        self.slot += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessorConfig;
    use crate::fault::FaultScript;
    use crate::StartPolicy;
    use vg_markov::AvailabilityChain;
    use ProcState::{Down as D, Reclaimed as R, Up as U};

    fn test_chain() -> AvailabilityChain {
        AvailabilityChain::new([[0.9, 0.05, 0.05], [0.1, 0.85, 0.05], [0.05, 0.05, 0.9]]).unwrap()
    }

    fn platform(p: usize) -> PlatformConfig {
        PlatformConfig {
            processors: (0..p)
                .map(|_| ProcessorConfig::markov(2, test_chain(), StartPolicy::Up))
                .collect(),
            ncom: 2,
        }
    }

    #[test]
    fn overlay_forces_and_counts_only_real_changes() {
        let script = FaultScript::parse("kill 2 at 1 for 2")
            .unwrap()
            .compile(4)
            .unwrap();
        let mut ov = ScriptedOverlay::new(script);
        assert!(!ov.is_passthrough());
        assert_eq!(ov.p(), 4);

        let mut row = [U, U, U, U];
        assert_eq!(ov.apply_row(0, &mut row), 0, "before the span");
        assert_eq!(row, [U, U, U, U]);

        // Victims of `kill 2` on p=4 are workers 0 and 2; worker 2 is
        // already DOWN, so only one injection is counted.
        let mut row = [U, R, D, U];
        assert_eq!(ov.apply_row(1, &mut row), 1);
        assert_eq!(row, [D, R, D, U]);

        let mut row = [U, U, U, U];
        assert_eq!(ov.apply_row(2, &mut row), 2);
        assert_eq!(ov.apply_row(3, &mut row), 0, "after the span");
        assert_eq!(ov.injected_faults(), 3);
    }

    #[test]
    fn passthrough_overlay_never_touches_rows() {
        let mut ov = ScriptedOverlay::new(CompiledScript::empty(3));
        assert!(ov.is_passthrough());
        let mut row = [U, R, D];
        for slot in 0..100 {
            assert_eq!(ov.apply_row(slot, &mut row), 0);
        }
        assert_eq!(row, [U, R, D]);
        assert_eq!(ov.injected_faults(), 0);
    }

    #[test]
    fn identity_model_is_byte_identical_to_base() {
        // Single identity group, then four identity groups: both must
        // reproduce the unmodulated dense bank exactly.
        let pf = platform(8);
        let seeds = SeedPath::root(21);
        for n_groups in [1usize, 4] {
            let model = CorrelatedModel::uniform_groups(8, n_groups, OutageChain::identity());
            let mut corr = model.build(&pf, &seeds).unwrap();
            let mut bank = MarkovSourceBank::try_from_platform(&pf, &seeds).unwrap();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for slot in 0..500 {
                a.clear();
                b.clear();
                corr.next_row_into(&mut a);
                bank.next_row_into(&mut b);
                assert_eq!(a, b, "{n_groups} groups, slot {slot}");
            }
            assert_eq!(corr.slots_emitted(), 500);
        }
    }

    #[test]
    fn sticky_outage_forces_members_down() {
        // One group covering workers 0..4 of 8 that fails immediately and
        // never recovers: from slot 1 on, exactly that half is DOWN.
        let pf = platform(8);
        let model = CorrelatedModel {
            groups: vec![GroupSpec {
                members: 0..4,
                outage: OutageChain::new(1.0, 0.0).unwrap(),
            }],
            diurnal: None,
        };
        let mut corr = model.build(&pf, &SeedPath::root(3)).unwrap();
        let mut row = Vec::new();
        corr.next_row_into(&mut row); // slot 0: modulator still Normal
        for slot in 1..50 {
            row.clear();
            corr.next_row_into(&mut row);
            assert_eq!(&row[..4], &[D, D, D, D], "slot {slot}");
        }
    }

    #[test]
    fn diurnal_demotes_up_members_in_off_phase() {
        let pf = platform(6);
        let mut model = CorrelatedModel::uniform_groups(6, 2, OutageChain::identity());
        model.diurnal = Some(DiurnalSpec {
            period: 10,
            off_len: 4,
            group_stagger: 5,
        });
        model.validate(6).unwrap();
        let mut corr = model.build(&pf, &SeedPath::root(9)).unwrap();
        let mut base = MarkovSourceBank::try_from_platform(&pf, &SeedPath::root(9)).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let d = model.diurnal.unwrap();
        for slot in 0..200u64 {
            a.clear();
            b.clear();
            corr.next_row_into(&mut a);
            base.next_row_into(&mut b);
            for (g, lo) in [(0usize, 0usize), (1, 3)] {
                for q in lo..lo + 3 {
                    if d.is_off(g, slot) && b[q] == U {
                        assert_eq!(a[q], R, "slot {slot} proc {q}");
                    } else {
                        assert_eq!(a[q], b[q], "slot {slot} proc {q}");
                    }
                }
            }
        }
    }

    #[test]
    fn model_validation_is_loud() {
        assert!(CorrelatedModel {
            groups: vec![GroupSpec {
                members: 2..2,
                outage: OutageChain::identity(),
            }],
            diurnal: None,
        }
        .validate(4)
        .is_err());
        assert!(CorrelatedModel {
            groups: vec![GroupSpec {
                members: 0..9,
                outage: OutageChain::identity(),
            }],
            diurnal: None,
        }
        .validate(4)
        .is_err());
        assert!(DiurnalSpec {
            period: 5,
            off_len: 5,
            group_stagger: 0,
        }
        .validate()
        .is_err());
        assert!(DiurnalSpec {
            period: 0,
            off_len: 0,
            group_stagger: 0,
        }
        .validate()
        .is_err());
        let e = CorrelatedModel::uniform_groups(4, 9, OutageChain::identity());
        assert_eq!(e.groups.len(), 4, "groups clamp to p");
        assert!(e.validate(4).is_ok());
    }

    #[test]
    fn correlated_source_records_into_shared_matrix() {
        use crate::source::SharedTraceMatrix;
        let pf = platform(5);
        let model = CorrelatedModel::uniform_groups(5, 2, OutageChain::new(0.3, 0.3).unwrap());
        let direct = {
            let mut src = model.build(&pf, &SeedPath::root(4)).unwrap();
            let mut all = Vec::new();
            for _ in 0..40 {
                src.next_row_into(&mut all);
            }
            all
        };
        let matrix =
            SharedTraceMatrix::record_rows(Box::new(model.build(&pf, &SeedPath::root(4)).unwrap()));
        for t in 0..40 {
            matrix.with_row(t, |row| {
                assert_eq!(row, &direct[t * 5..(t + 1) * 5], "slot {t}");
            });
        }
    }
}
