//! Uniform interface over availability generators.
//!
//! The simulator pulls one state per processor per slot. A source can be a
//! Markov chain (the paper's model), a semi-Markov process (the robustness
//! extension), or a recorded trace being replayed (off-line instances,
//! archive logs). All are deterministic functions of their construction
//! arguments, which is what makes common-random-number comparisons between
//! heuristics possible.

use vg_des::rng::{SeedPath, StreamRng};
use vg_markov::availability::{AvailabilityChain, AvailabilityStream, ProcState};
use vg_markov::semi_markov::{SemiMarkovModel, SemiMarkovStream};

use crate::config::{AvailabilityModelConfig, ConfigError, PlatformConfig};
use crate::trace::Trace;

/// A per-slot availability state generator for one processor.
pub trait AvailabilitySource {
    /// Returns the state for the next slot and advances.
    fn next_state(&mut self) -> ProcState;
}

/// A per-slot availability generator for a **whole platform at once**: one
/// call emits the next state of every processor, in processor order.
///
/// Per-processor sources ([`AvailabilitySource`]) cannot express *cross-
/// worker correlation* — a shared group modulator must decide one outage
/// draw and apply it to every member of the group in the same slot. Row
/// sources own the whole row, so correlated models (and the dense
/// [`MarkovSourceBank`]) plug into the engine and the shared-trace recorder
/// through one interface.
pub trait RowSource {
    /// Number of processors per row.
    fn p(&self) -> usize;

    /// Appends the next slot's state for every processor (in order) to
    /// `out` and advances. Must append exactly [`Self::p`] states.
    fn next_row_into(&mut self, out: &mut Vec<ProcState>);
}

impl RowSource for MarkovSourceBank {
    fn p(&self) -> usize {
        MarkovSourceBank::p(self)
    }

    fn next_row_into(&mut self, out: &mut Vec<ProcState>) {
        MarkovSourceBank::next_row_into(self, out);
    }
}

impl AvailabilitySource for AvailabilityStream {
    fn next_state(&mut self) -> ProcState {
        AvailabilityStream::next_state(self)
    }
}

impl AvailabilitySource for SemiMarkovStream {
    fn next_state(&mut self) -> ProcState {
        SemiMarkovStream::next_state(self)
    }
}

/// What a [`ReplaySource`] emits once the recorded trace is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TailBehavior {
    /// Keep emitting the final state of the trace (default: a machine that
    /// was UP stays UP).
    HoldLast,
    /// Restart from the beginning (periodic availability, e.g. daily cycles).
    Cycle,
    /// Emit `RECLAIMED` forever — the conservative choice for off-line
    /// instances, where nothing may execute beyond the defined horizon.
    ReclaimedForever,
}

/// Replays a fixed trace.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    trace: Trace,
    pos: usize,
    tail: TailBehavior,
}

impl ReplaySource {
    /// Creates a replay source, rejecting configurations with no defined
    /// state stream: an empty trace cannot be held or cycled.
    pub fn try_new(trace: Trace, tail: TailBehavior) -> Result<Self, ConfigError> {
        if trace.is_empty() && matches!(tail, TailBehavior::HoldLast | TailBehavior::Cycle) {
            return Err(ConfigError(format!(
                "cannot hold/cycle an empty trace (tail = {tail:?})"
            )));
        }
        Ok(Self {
            trace,
            pos: 0,
            tail,
        })
    }

    /// Creates a replay source.
    ///
    /// # Panics
    /// Panics if the trace is empty and `tail` is [`TailBehavior::HoldLast`]
    /// or [`TailBehavior::Cycle`] (there is nothing to hold or cycle); use
    /// [`Self::try_new`] to handle that case as an error.
    #[must_use]
    pub fn new(trace: Trace, tail: TailBehavior) -> Self {
        if matches!(tail, TailBehavior::HoldLast | TailBehavior::Cycle) {
            assert!(!trace.is_empty(), "cannot hold/cycle an empty trace");
        }
        Self {
            trace,
            pos: 0,
            tail,
        }
    }

    /// The underlying trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl AvailabilitySource for ReplaySource {
    fn next_state(&mut self) -> ProcState {
        if self.pos < self.trace.len() {
            let s = self.trace.states()[self.pos];
            self.pos += 1;
            return s;
        }
        match self.tail {
            // Construction guarantees a non-empty trace for HoldLast; the
            // fallback keeps the exhausted-trace path panic-free anyway.
            TailBehavior::HoldLast => self
                .trace
                .states()
                .last()
                .copied()
                .unwrap_or(ProcState::Reclaimed),
            TailBehavior::Cycle => {
                self.pos = 1;
                self.trace.states()[0]
            }
            TailBehavior::ReclaimedForever => ProcState::Reclaimed,
        }
    }
}

/// A **shared availability recording** for one platform × one trace seed:
/// the per-slot states of every processor, sampled lazily row by row from
/// the underlying live sources and replayed to any number of consumers.
///
/// This is the campaign's common-random-number accelerator: the paper runs
/// every heuristic of an instance against byte-identical availability, so
/// sampling each `(slot, processor)` state once and replaying it 16 more
/// times replaces 16/17 of all RNG draws with a contiguous byte read. The
/// matrix is **slot-major** (`states[slot·p + q]`), matching the engine's
/// per-slot scan order, so replay reads are sequential.
///
/// Rows extend on demand: when any reader asks for a slot beyond the
/// horizon, the matrix samples one full row (every live source, in
/// processor order). Each processor's state stream is therefore exactly the
/// stream its live source would have produced stand-alone — replay is
/// bit-identical to direct sampling, regardless of which run triggered the
/// extension.
#[derive(Debug)]
pub struct SharedTraceMatrix {
    inner: std::rc::Rc<std::cell::RefCell<TraceMatrixInner>>,
}

struct TraceMatrixInner {
    /// Number of processors (row width).
    p: usize,
    /// Slot-major state matrix: `states[slot * p + q]`.
    states: Vec<ProcState>,
    /// The live generator, consulted only beyond the horizon.
    live: RowBackend,
}

/// What samples fresh rows beyond the recorded horizon.
enum RowBackend {
    /// One independent live source per processor, scanned in order.
    PerProc(Vec<Box<dyn AvailabilitySource>>),
    /// A whole-row generator (dense bank, correlated model).
    Rows(Box<dyn RowSource>),
}

impl RowBackend {
    fn append_row(&mut self, states: &mut Vec<ProcState>) {
        match self {
            Self::PerProc(live) => states.extend(live.iter_mut().map(|src| src.next_state())),
            Self::Rows(rows) => rows.next_row_into(states),
        }
    }
}

impl std::fmt::Debug for TraceMatrixInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceMatrixInner")
            .field("p", &self.p)
            .field("recorded_slots", &(self.states.len() / self.p.max(1)))
            .finish_non_exhaustive()
    }
}

impl SharedTraceMatrix {
    /// Wraps one live source per processor. `sources` must be in processor
    /// order and non-empty.
    ///
    /// # Panics
    /// Panics when `sources` is empty; use [`Self::try_record`] to handle
    /// that case as an error.
    #[must_use]
    pub fn record(sources: Vec<Box<dyn AvailabilitySource>>) -> Self {
        assert!(!sources.is_empty(), "a platform has at least one processor");
        Self::from_backend(sources.len(), RowBackend::PerProc(sources))
    }

    /// Fallible form of [`Self::record`]: an empty source roster is a loud
    /// configuration error instead of a panic.
    pub fn try_record(sources: Vec<Box<dyn AvailabilitySource>>) -> Result<Self, ConfigError> {
        if sources.is_empty() {
            return Err(ConfigError(
                "cannot record a trace matrix over zero sources".into(),
            ));
        }
        Ok(Self::record(sources))
    }

    /// Wraps a whole-row generator (dense bank, correlated model). The
    /// recording replays exactly the rows `rows` would emit stand-alone.
    ///
    /// # Panics
    /// Panics when `rows.p() == 0`; use [`Self::try_record_rows`] to handle
    /// that case as an error.
    #[must_use]
    pub fn record_rows(rows: Box<dyn RowSource>) -> Self {
        assert!(rows.p() > 0, "a platform has at least one processor");
        Self::from_backend(rows.p(), RowBackend::Rows(rows))
    }

    /// Fallible form of [`Self::record_rows`]: an empty row source is a
    /// loud configuration error instead of a panic.
    pub fn try_record_rows(rows: Box<dyn RowSource>) -> Result<Self, ConfigError> {
        if rows.p() == 0 {
            return Err(ConfigError(
                "cannot record a trace matrix over an empty row source".into(),
            ));
        }
        Ok(Self::record_rows(rows))
    }

    fn from_backend(p: usize, live: RowBackend) -> Self {
        Self {
            inner: std::rc::Rc::new(std::cell::RefCell::new(TraceMatrixInner {
                p,
                states: Vec::new(),
                live,
            })),
        }
    }

    /// Number of processors.
    #[must_use]
    pub fn p(&self) -> usize {
        self.inner.borrow().p
    }

    /// Slots recorded so far.
    #[must_use]
    pub fn recorded_slots(&self) -> usize {
        let inner = self.inner.borrow();
        inner.states.len() / inner.p
    }

    /// A cheap second handle to the same shared recording (the backing
    /// matrix is reference-counted).
    #[must_use]
    pub fn handle(&self) -> Self {
        Self {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }

    /// Runs `f` on the full state row of `slot` (one state per processor,
    /// in order), sampling and recording the row first if it lies beyond
    /// the horizon. This is the bulk-read fast path: one borrow and `p`
    /// contiguous byte reads per slot, no per-processor virtual calls.
    pub fn with_row<R>(&self, slot: usize, f: impl FnOnce(&[ProcState]) -> R) -> R {
        let mut inner = self.inner.borrow_mut();
        let p = inner.p;
        while (slot + 1) * p > inner.states.len() {
            let TraceMatrixInner { states, live, .. } = &mut *inner;
            live.append_row(states);
            debug_assert_eq!(states.len() % p, 0, "row source appended a partial row");
        }
        f(&inner.states[slot * p..(slot + 1) * p])
    }
}

/// A **dense, monomorphic bank** of per-processor Markov availability
/// streams: the platform-scale replacement for a `Vec<Box<dyn
/// AvailabilitySource>>` when every processor runs the paper's 3-state
/// chain (the common case by far).
///
/// The boxed form costs one virtual call plus a scattered heap load per
/// processor per slot — at `p = 131072` the states pass becomes a pointer
/// chase across a hundred thousand allocations. The bank keeps the chains,
/// RNG states and current states in three contiguous columns and advances
/// them in one linear sweep, so the per-slot pass streams memory instead.
///
/// **Bit-identity contract**: processor `q`'s emitted stream is exactly the
/// stream of `markov_source(chain_q, start_q, trace_seeds.child(q).rng())`
/// — same construction-time draws (stationary starts), same per-slot
/// `sample_next` logic on the same per-processor RNG. The
/// `dense_markov_bank_matches_boxed_streams` test pins this.
#[derive(Debug, Default)]
pub struct MarkovSourceBank {
    /// The platform's **distinct** chains (platforms draw processors from a
    /// handful of machine classes, so this is typically a few entries that
    /// live in L1 across the whole sweep — per-processor clones would
    /// stream another 72 bytes × p per slot for identical matrices).
    chains: Vec<AvailabilityChain>,
    /// Per-processor index into `chains`.
    chain_idx: Vec<u32>,
    rngs: Vec<StreamRng>,
    states: Vec<ProcState>,
}

impl MarkovSourceBank {
    /// Builds a bank for `platform` with the per-processor seed layout of
    /// the engine's `run_seeded` entry points (`trace_seeds.child(q)`).
    /// Returns `None` when any processor's availability model is not a
    /// Markov chain (semi-Markov, replay) — callers fall back to boxed
    /// sources.
    #[must_use]
    pub fn try_from_platform(platform: &PlatformConfig, trace_seeds: &SeedPath) -> Option<Self> {
        let mut bank = Self::default();
        bank.rebuild_from_platform(platform, trace_seeds)
            .then_some(bank)
    }

    /// Re-seeds this bank in place for another run (arena reuse: the
    /// columns keep their capacity). Returns `false` — leaving the bank
    /// empty — when the platform has any non-Markov processor.
    pub fn rebuild_from_platform(
        &mut self,
        platform: &PlatformConfig,
        trace_seeds: &SeedPath,
    ) -> bool {
        self.chains.clear();
        self.chain_idx.clear();
        self.rngs.clear();
        self.states.clear();
        for (q, pc) in platform.processors.iter().enumerate() {
            // Bail on the first non-Markov processor — the caller falls
            // back to the boxed per-proc sources — leaving the bank empty,
            // not half-seeded.
            let AvailabilityModelConfig::Markov { chain, start } = &pc.avail else {
                self.chains.clear();
                self.chain_idx.clear();
                self.rngs.clear();
                self.states.clear();
                return false;
            };
            let mut rng = trace_seeds.child(q as u64).rng();
            // Mirror `markov_source` exactly, construction draws included.
            let state = match start {
                StartPolicy::Up => ProcState::Up,
                StartPolicy::Stationary => {
                    let pi = chain.stationary();
                    ProcState::from_index(rng.weighted_index(&pi).unwrap_or(0))
                }
            };
            // Dedup by exact matrix equality: only bit-identical chains
            // share an entry, so `chains[chain_idx[q]]` samples exactly as
            // `q`'s own clone would. The probe is capped — a pathological
            // platform of all-distinct chains degrades to per-processor
            // entries (always correct, just unshared) instead of an O(p²)
            // rebuild.
            let ci = match self.chains.iter().take(64).position(|c| c == chain) {
                Some(i) => i,
                None => {
                    self.chains.push(chain.clone());
                    self.chains.len() - 1
                }
            };
            // Lossless: at most one chain is pushed per processor, and
            // validation bounds processor counts to u32.
            self.chain_idx.push(ci as u32);
            self.rngs.push(rng);
            self.states.push(state);
        }
        true
    }

    /// Number of processors in the bank.
    #[must_use]
    pub fn p(&self) -> usize {
        self.states.len()
    }

    /// Appends the next slot's state for every processor (in order) to
    /// `out` and advances all streams — the dense equivalent of calling
    /// `next_state()` on `p` boxed sources.
    pub fn next_row_into(&mut self, out: &mut Vec<ProcState>) {
        out.reserve(self.states.len());
        for ((state, &ci), rng) in self
            .states
            .iter_mut()
            .zip(self.chain_idx.iter())
            .zip(self.rngs.iter_mut())
        {
            let cur = *state;
            out.push(cur);
            *state = self.chains[ci as usize].sample_next(cur, rng);
        }
    }
}

/// Initial-state policy for stochastic sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StartPolicy {
    /// Begin `UP` (the paper's simulator enrolls from a live pool).
    Up,
    /// Draw the initial state from the stationary distribution (a platform
    /// observed at an arbitrary instant).
    Stationary,
}

/// Builds a boxed source from a Markov chain.
#[must_use]
pub fn markov_source(
    chain: AvailabilityChain,
    start: StartPolicy,
    rng: StreamRng,
) -> Box<dyn AvailabilitySource> {
    match start {
        StartPolicy::Up => Box::new(AvailabilityStream::new(chain, ProcState::Up, rng)),
        StartPolicy::Stationary => Box::new(AvailabilityStream::stationary_start(chain, rng)),
    }
}

/// Builds a boxed source from a semi-Markov model (starts a fresh sojourn;
/// `Stationary` draws the starting state from the occupancy distribution).
#[must_use]
pub fn semi_markov_source(
    model: SemiMarkovModel,
    start: StartPolicy,
    mut rng: StreamRng,
) -> Box<dyn AvailabilitySource> {
    let state = match start {
        StartPolicy::Up => ProcState::Up,
        StartPolicy::Stationary => {
            let occ = model.occupancy();
            ProcState::from_index(rng.weighted_index(&occ).unwrap_or(0))
        }
    };
    Box::new(SemiMarkovStream::new(model, state, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_des::rng::SeedPath;
    use ProcState::{Down as D, Reclaimed as R, Up as U};

    #[test]
    fn replay_emits_trace_then_tail() {
        let t = Trace::parse("urd").unwrap();
        let mut hold = ReplaySource::new(t.clone(), TailBehavior::HoldLast);
        let seq: Vec<_> = (0..5).map(|_| hold.next_state()).collect();
        assert_eq!(seq, vec![U, R, D, D, D]);

        let mut cycle = ReplaySource::new(t.clone(), TailBehavior::Cycle);
        let seq: Vec<_> = (0..7).map(|_| cycle.next_state()).collect();
        assert_eq!(seq, vec![U, R, D, U, R, D, U]);

        let mut rec = ReplaySource::new(t, TailBehavior::ReclaimedForever);
        let seq: Vec<_> = (0..5).map(|_| rec.next_state()).collect();
        assert_eq!(seq, vec![U, R, D, R, R]);
    }

    #[test]
    fn replay_empty_trace_reclaimed_tail() {
        let mut s = ReplaySource::new(Trace::default(), TailBehavior::ReclaimedForever);
        assert_eq!(s.next_state(), R);
    }

    #[test]
    fn replay_try_new_rejects_empty_hold_and_cycle() {
        // The fallible constructor turns the two undefined configurations
        // into loud errors and accepts everything else.
        for tail in [TailBehavior::HoldLast, TailBehavior::Cycle] {
            let e = ReplaySource::try_new(Trace::default(), tail).unwrap_err();
            assert!(e.0.contains("empty trace"), "unhelpful: {e}");
        }
        assert!(ReplaySource::try_new(Trace::default(), TailBehavior::ReclaimedForever).is_ok());
        assert!(ReplaySource::try_new(Trace::parse("u").unwrap(), TailBehavior::Cycle).is_ok());
    }

    #[test]
    fn replay_short_trace_tails_are_total() {
        // A trace shorter than the run keeps emitting well-defined states
        // under every tail policy (no truncation, no panic).
        for (tail, expect) in [
            (TailBehavior::HoldLast, D),
            (TailBehavior::Cycle, U),
            (TailBehavior::ReclaimedForever, R),
        ] {
            let mut s = ReplaySource::try_new(Trace::parse("ud").unwrap(), tail).unwrap();
            let run: Vec<_> = (0..100).map(|_| s.next_state()).collect();
            assert_eq!(run[0], U);
            assert_eq!(run[1], D);
            assert_eq!(run[2], expect, "{tail:?}");
            assert_eq!(run.len(), 100);
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold/cycle")]
    fn replay_empty_trace_hold_panics() {
        let _ = ReplaySource::new(Trace::default(), TailBehavior::HoldLast);
    }

    #[test]
    fn markov_source_starts_up() {
        let chain =
            AvailabilityChain::new([[0.9, 0.05, 0.05], [0.1, 0.85, 0.05], [0.05, 0.05, 0.9]])
                .unwrap();
        let mut src = markov_source(chain, StartPolicy::Up, SeedPath::root(1).rng());
        assert_eq!(src.next_state(), U);
    }

    #[test]
    fn boxed_sources_are_deterministic() {
        let chain =
            AvailabilityChain::new([[0.9, 0.05, 0.05], [0.1, 0.85, 0.05], [0.05, 0.05, 0.9]])
                .unwrap();
        let run = || {
            let mut src = markov_source(chain.clone(), StartPolicy::Up, SeedPath::root(9).rng());
            (0..100).map(|_| src.next_state()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    fn test_chain() -> AvailabilityChain {
        AvailabilityChain::new([[0.9, 0.05, 0.05], [0.1, 0.85, 0.05], [0.05, 0.05, 0.9]]).unwrap()
    }

    fn live_sources(p: usize, seed: u64) -> Vec<Box<dyn AvailabilitySource>> {
        let path = SeedPath::root(seed);
        (0..p)
            .map(|q| markov_source(test_chain(), StartPolicy::Up, path.child(q as u64).rng()))
            .collect()
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // `t` is the slot number under test
    fn shared_trace_rows_replay_bit_identically() {
        // Each processor's column of the row stream must equal the
        // stand-alone source stream, for a short first consumer, a longer
        // second consumer (replays the prefix, extends beyond), and a third
        // fully inside the horizon.
        let p = 3;
        let direct: Vec<Vec<ProcState>> = live_sources(p, 77)
            .into_iter()
            .map(|mut s| (0..200).map(|_| s.next_state()).collect())
            .collect();
        let matrix = SharedTraceMatrix::record(live_sources(p, 77));
        assert_eq!(matrix.p(), 3);

        for (consumer, horizon) in [("first", 50), ("second", 200), ("third", 200)] {
            for t in 0..horizon {
                matrix.with_row(t, |row| {
                    for (q, &state) in row.iter().enumerate() {
                        assert_eq!(state, direct[q][t], "{consumer} run, slot {t} proc {q}");
                    }
                });
            }
            assert_eq!(matrix.recorded_slots(), horizon.max(50));
        }
        assert_eq!(matrix.recorded_slots(), 200);
    }

    #[test]
    fn shared_trace_try_record_rejects_empty_rosters() {
        let e = SharedTraceMatrix::try_record(Vec::new()).unwrap_err();
        assert!(e.0.contains("zero sources"), "unhelpful: {e}");
        let e =
            SharedTraceMatrix::try_record_rows(Box::new(MarkovSourceBank::default())).unwrap_err();
        assert!(e.0.contains("empty row source"), "unhelpful: {e}");
        assert!(SharedTraceMatrix::try_record(live_sources(1, 3)).is_ok());
    }

    #[test]
    fn shared_trace_rows_backend_matches_per_proc_backend() {
        // Recording through a whole-row generator must replay exactly the
        // same matrix as recording the equivalent boxed per-proc sources.
        use crate::config::ProcessorConfig;
        let platform = PlatformConfig {
            processors: (0..5)
                .map(|_| ProcessorConfig::markov(2, test_chain(), StartPolicy::Up))
                .collect(),
            ncom: 1,
        };
        let seeds = SeedPath::root(13);
        let boxed: Vec<_> = platform
            .processors
            .iter()
            .enumerate()
            .map(|(q, pc)| pc.avail.build_source(seeds.child(q as u64).rng()))
            .collect();
        let bank = MarkovSourceBank::try_from_platform(&platform, &seeds).unwrap();
        let per_proc = SharedTraceMatrix::record(boxed);
        let rows = SharedTraceMatrix::record_rows(Box::new(bank));
        assert_eq!(rows.p(), 5);
        for t in 0..120 {
            let a = per_proc.with_row(t, <[ProcState]>::to_vec);
            let b = rows.with_row(t, <[ProcState]>::to_vec);
            assert_eq!(a, b, "slot {t}");
        }
    }

    #[test]
    fn shared_trace_handle_shares_the_recording() {
        // A cheap handle observes (and extends) the same backing matrix.
        let matrix = SharedTraceMatrix::record(live_sources(2, 5));
        let handle = matrix.handle();
        let via_handle = handle.with_row(9, |row| row.to_vec());
        assert_eq!(matrix.recorded_slots(), 10);
        let via_original = matrix.with_row(9, |row| row.to_vec());
        assert_eq!(via_handle, via_original);
        assert_eq!(matrix.recorded_slots(), 10, "replays do not extend");
    }

    #[test]
    fn dense_markov_bank_matches_boxed_streams() {
        // The bank's per-processor streams must be bit-identical to the
        // boxed `markov_source` streams under the engine's seed layout,
        // for both start policies.
        use crate::processor::ProcessorSpec;
        let platform = PlatformConfig {
            processors: (0..7)
                .map(|q| {
                    let mut rng = SeedPath::root(100 + q).rng();
                    let chain = AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99);
                    crate::config::ProcessorConfig {
                        spec: ProcessorSpec::new(1 + q),
                        avail: AvailabilityModelConfig::Markov {
                            chain,
                            start: if q % 2 == 0 {
                                StartPolicy::Up
                            } else {
                                StartPolicy::Stationary
                            },
                        },
                        believed: None,
                    }
                })
                .collect(),
            ncom: 2,
        };
        let seeds = SeedPath::root(9);
        let mut boxed: Vec<_> = platform
            .processors
            .iter()
            .enumerate()
            .map(|(q, pc)| pc.avail.build_source(seeds.child(q as u64).rng()))
            .collect();
        let mut bank =
            MarkovSourceBank::try_from_platform(&platform, &seeds).expect("all-Markov platform");
        assert_eq!(bank.p(), 7);
        let mut row = Vec::new();
        for slot in 0..300 {
            row.clear();
            bank.next_row_into(&mut row);
            for (q, src) in boxed.iter_mut().enumerate() {
                assert_eq!(row[q], src.next_state(), "slot {slot} proc {q}");
            }
        }
    }

    #[test]
    fn dense_markov_bank_rejects_non_markov_platforms() {
        use crate::processor::ProcessorSpec;
        let platform = PlatformConfig {
            processors: vec![
                crate::config::ProcessorConfig::markov(1, test_chain(), StartPolicy::Up),
                crate::config::ProcessorConfig {
                    spec: ProcessorSpec::new(1),
                    avail: AvailabilityModelConfig::Replay {
                        trace: Trace::parse("u").unwrap(),
                        tail: TailBehavior::HoldLast,
                    },
                    believed: None,
                },
            ],
            ncom: 1,
        };
        assert!(MarkovSourceBank::try_from_platform(&platform, &SeedPath::root(1)).is_none());
        // A rejected rebuild leaves the bank empty, not half-seeded.
        let mut bank = MarkovSourceBank::default();
        assert!(!bank.rebuild_from_platform(&platform, &SeedPath::root(1)));
        assert_eq!(bank.p(), 0);
    }

    #[test]
    fn semi_markov_source_runs() {
        let model = SemiMarkovModel::desktop_template(20.0);
        let mut src = semi_markov_source(model, StartPolicy::Stationary, SeedPath::root(2).rng());
        for _ in 0..100 {
            let _ = src.next_state();
        }
    }
}
