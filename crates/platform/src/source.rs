//! Uniform interface over availability generators.
//!
//! The simulator pulls one state per processor per slot. A source can be a
//! Markov chain (the paper's model), a semi-Markov process (the robustness
//! extension), or a recorded trace being replayed (off-line instances,
//! archive logs). All are deterministic functions of their construction
//! arguments, which is what makes common-random-number comparisons between
//! heuristics possible.

use vg_markov::availability::{AvailabilityChain, AvailabilityStream, ProcState};
use vg_markov::semi_markov::{SemiMarkovModel, SemiMarkovStream};
use vg_des::rng::StreamRng;

use crate::trace::Trace;

/// A per-slot availability state generator for one processor.
pub trait AvailabilitySource {
    /// Returns the state for the next slot and advances.
    fn next_state(&mut self) -> ProcState;
}

impl AvailabilitySource for AvailabilityStream {
    fn next_state(&mut self) -> ProcState {
        AvailabilityStream::next_state(self)
    }
}

impl AvailabilitySource for SemiMarkovStream {
    fn next_state(&mut self) -> ProcState {
        SemiMarkovStream::next_state(self)
    }
}

/// What a [`ReplaySource`] emits once the recorded trace is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TailBehavior {
    /// Keep emitting the final state of the trace (default: a machine that
    /// was UP stays UP).
    HoldLast,
    /// Restart from the beginning (periodic availability, e.g. daily cycles).
    Cycle,
    /// Emit `RECLAIMED` forever — the conservative choice for off-line
    /// instances, where nothing may execute beyond the defined horizon.
    ReclaimedForever,
}

/// Replays a fixed trace.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    trace: Trace,
    pos: usize,
    tail: TailBehavior,
}

impl ReplaySource {
    /// Creates a replay source.
    ///
    /// # Panics
    /// Panics if the trace is empty and `tail` is [`TailBehavior::HoldLast`]
    /// or [`TailBehavior::Cycle`] (there is nothing to hold or cycle).
    #[must_use]
    pub fn new(trace: Trace, tail: TailBehavior) -> Self {
        if matches!(tail, TailBehavior::HoldLast | TailBehavior::Cycle) {
            assert!(!trace.is_empty(), "cannot hold/cycle an empty trace");
        }
        Self { trace, pos: 0, tail }
    }

    /// The underlying trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl AvailabilitySource for ReplaySource {
    fn next_state(&mut self) -> ProcState {
        if self.pos < self.trace.len() {
            let s = self.trace.states()[self.pos];
            self.pos += 1;
            return s;
        }
        match self.tail {
            TailBehavior::HoldLast => *self.trace.states().last().expect("checked non-empty"),
            TailBehavior::Cycle => {
                self.pos = 1;
                self.trace.states()[0]
            }
            TailBehavior::ReclaimedForever => ProcState::Reclaimed,
        }
    }
}

/// Initial-state policy for stochastic sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StartPolicy {
    /// Begin `UP` (the paper's simulator enrolls from a live pool).
    Up,
    /// Draw the initial state from the stationary distribution (a platform
    /// observed at an arbitrary instant).
    Stationary,
}

/// Builds a boxed source from a Markov chain.
#[must_use]
pub fn markov_source(
    chain: AvailabilityChain,
    start: StartPolicy,
    rng: StreamRng,
) -> Box<dyn AvailabilitySource> {
    match start {
        StartPolicy::Up => Box::new(AvailabilityStream::new(chain, ProcState::Up, rng)),
        StartPolicy::Stationary => Box::new(AvailabilityStream::stationary_start(chain, rng)),
    }
}

/// Builds a boxed source from a semi-Markov model (starts a fresh sojourn;
/// `Stationary` draws the starting state from the occupancy distribution).
#[must_use]
pub fn semi_markov_source(
    model: SemiMarkovModel,
    start: StartPolicy,
    mut rng: StreamRng,
) -> Box<dyn AvailabilitySource> {
    let state = match start {
        StartPolicy::Up => ProcState::Up,
        StartPolicy::Stationary => {
            let occ = model.occupancy();
            ProcState::from_index(rng.weighted_index(&occ).unwrap_or(0))
        }
    };
    Box::new(SemiMarkovStream::new(model, state, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_des::rng::SeedPath;
    use ProcState::{Down as D, Reclaimed as R, Up as U};

    #[test]
    fn replay_emits_trace_then_tail() {
        let t = Trace::parse("urd").unwrap();
        let mut hold = ReplaySource::new(t.clone(), TailBehavior::HoldLast);
        let seq: Vec<_> = (0..5).map(|_| hold.next_state()).collect();
        assert_eq!(seq, vec![U, R, D, D, D]);

        let mut cycle = ReplaySource::new(t.clone(), TailBehavior::Cycle);
        let seq: Vec<_> = (0..7).map(|_| cycle.next_state()).collect();
        assert_eq!(seq, vec![U, R, D, U, R, D, U]);

        let mut rec = ReplaySource::new(t, TailBehavior::ReclaimedForever);
        let seq: Vec<_> = (0..5).map(|_| rec.next_state()).collect();
        assert_eq!(seq, vec![U, R, D, R, R]);
    }

    #[test]
    fn replay_empty_trace_reclaimed_tail() {
        let mut s = ReplaySource::new(Trace::default(), TailBehavior::ReclaimedForever);
        assert_eq!(s.next_state(), R);
    }

    #[test]
    #[should_panic(expected = "cannot hold/cycle")]
    fn replay_empty_trace_hold_panics() {
        let _ = ReplaySource::new(Trace::default(), TailBehavior::HoldLast);
    }

    #[test]
    fn markov_source_starts_up() {
        let chain = AvailabilityChain::new([
            [0.9, 0.05, 0.05],
            [0.1, 0.85, 0.05],
            [0.05, 0.05, 0.9],
        ])
        .unwrap();
        let mut src = markov_source(chain, StartPolicy::Up, SeedPath::root(1).rng());
        assert_eq!(src.next_state(), U);
    }

    #[test]
    fn boxed_sources_are_deterministic() {
        let chain = AvailabilityChain::new([
            [0.9, 0.05, 0.05],
            [0.1, 0.85, 0.05],
            [0.05, 0.05, 0.9],
        ])
        .unwrap();
        let run = || {
            let mut src = markov_source(chain.clone(), StartPolicy::Up, SeedPath::root(9).rng());
            (0..100).map(|_| src.next_state()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn semi_markov_source_runs() {
        let model = SemiMarkovModel::desktop_template(20.0);
        let mut src = semi_markov_source(model, StartPolicy::Stationary, SeedPath::root(2).rng());
        for _ in 0..100 {
            let _ = src.next_state();
        }
    }
}
