//! Availability traces: dense, run-length-encoded, and textual forms.
//!
//! A trace is the realized state vector `S_q` of Section 3.2: `S_q[t]` is the
//! processor's state at slot `t`. Traces serve three purposes here:
//!
//! 1. **Off-line instances** (Section 4) are *defined* by known traces;
//! 2. recorded simulation runs can be replayed exactly;
//! 3. field logs (e.g. converted from the Failure Trace Archive) can drive
//!    the simulator through [`crate::source::ReplaySource`].
//!
//! The textual form is one character per slot — `u`, `r`, `d` — the same
//! notation the paper uses, so paper examples paste directly into tests:
//! `Trace::parse("uuuuuurrr")`.

use serde::{Deserialize, Serialize};
use vg_des::Slot;
use vg_markov::ProcState;

/// A dense availability trace.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    states: Vec<ProcState>,
}

/// Error from [`Trace::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// The character that is not one of `u`, `r`, `d`.
    pub ch: char,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid trace character {:?} at offset {}",
            self.ch, self.at
        )
    }
}

impl std::error::Error for TraceParseError {}

impl Trace {
    /// Creates a trace from states.
    #[must_use]
    pub fn new(states: Vec<ProcState>) -> Self {
        Self { states }
    }

    /// Parses the compact `u`/`r`/`d` text form. Whitespace is ignored so
    /// traces can be wrapped in source code.
    pub fn parse(text: &str) -> Result<Self, TraceParseError> {
        let mut states = Vec::with_capacity(text.len());
        for (at, ch) in text.char_indices() {
            if ch.is_whitespace() {
                continue;
            }
            match ProcState::from_code(ch) {
                Some(s) => states.push(s),
                None => return Err(TraceParseError { at, ch }),
            }
        }
        Ok(Self { states })
    }

    /// Renders the compact text form.
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        self.states.iter().map(|s| s.code()).collect()
    }

    /// Number of slots covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the trace covers no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// State at `slot`, if covered.
    #[must_use]
    pub fn get(&self, slot: Slot) -> Option<ProcState> {
        self.states.get(slot as usize).copied()
    }

    /// All states.
    #[must_use]
    pub fn states(&self) -> &[ProcState] {
        &self.states
    }

    /// Number of `UP` slots in the trace.
    #[must_use]
    pub fn up_slots(&self) -> usize {
        self.states.iter().filter(|s| s.is_up()).count()
    }

    /// Fraction of slots in each state `(up, reclaimed, down)`.
    #[must_use]
    pub fn occupancy(&self) -> [f64; 3] {
        let mut counts = [0usize; 3];
        for s in &self.states {
            counts[s.index()] += 1;
        }
        let total = self.states.len().max(1) as f64;
        [
            counts[0] as f64 / total,
            counts[1] as f64 / total,
            counts[2] as f64 / total,
        ]
    }

    /// Run-length encoding.
    #[must_use]
    pub fn to_rle(&self) -> RleTrace {
        let mut runs: Vec<(ProcState, u64)> = Vec::new();
        for &s in &self.states {
            match runs.last_mut() {
                Some((state, count)) if *state == s => *count += 1,
                _ => runs.push((s, 1)),
            }
        }
        RleTrace { runs }
    }
}

impl FromIterator<ProcState> for Trace {
    fn from_iter<I: IntoIterator<Item = ProcState>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

/// Run-length-encoded availability trace.
///
/// Desktop-grid availability has long sojourns (hours of `UP`), so RLE traces
/// are often orders of magnitude smaller than dense ones — this is the
/// on-disk and over-the-wire format.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RleTrace {
    runs: Vec<(ProcState, u64)>,
}

impl RleTrace {
    /// Creates from explicit runs; adjacent equal states are merged and
    /// zero-length runs dropped, so the representation is canonical.
    #[must_use]
    pub fn new(raw_runs: Vec<(ProcState, u64)>) -> Self {
        let mut runs: Vec<(ProcState, u64)> = Vec::with_capacity(raw_runs.len());
        for (s, n) in raw_runs {
            if n == 0 {
                continue;
            }
            match runs.last_mut() {
                Some((state, count)) if *state == s => *count += n,
                _ => runs.push((s, n)),
            }
        }
        Self { runs }
    }

    /// The canonical runs.
    #[must_use]
    pub fn runs(&self) -> &[(ProcState, u64)] {
        &self.runs
    }

    /// Total slots covered.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.runs.iter().map(|(_, n)| n).sum()
    }

    /// True when no slots are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Expands into a dense trace.
    #[must_use]
    pub fn to_dense(&self) -> Trace {
        let mut states = Vec::with_capacity(self.len() as usize);
        for &(s, n) in &self.runs {
            states.extend(std::iter::repeat_n(s, n as usize));
        }
        Trace::new(states)
    }

    /// Textual form `u12 r3 d40 …` (state code + run length).
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        self.runs
            .iter()
            .map(|(s, n)| format!("{}{}", s.code(), n))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Parses the `u12 r3 …` form.
    pub fn parse(text: &str) -> Result<Self, TraceParseError> {
        let mut runs = Vec::new();
        let mut offset = 0usize;
        for token in text.split_whitespace() {
            let mut chars = token.chars();
            // `split_whitespace` never yields empty tokens; skip defensively
            // rather than carry a panic site in the parse path.
            let Some(code) = chars.next() else {
                continue;
            };
            let state = ProcState::from_code(code).ok_or(TraceParseError {
                at: offset,
                ch: code,
            })?;
            let count: u64 = chars.as_str().parse().map_err(|_| TraceParseError {
                at: offset,
                ch: chars.as_str().chars().next().unwrap_or(' '),
            })?;
            runs.push((state, count));
            offset += token.len() + 1;
        }
        Ok(Self::new(runs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ProcState::{Down as D, Reclaimed as R, Up as U};

    #[test]
    fn parse_and_render_roundtrip() {
        let t = Trace::parse("uur rd\nd").unwrap();
        assert_eq!(t.states(), &[U, U, R, R, D, D]);
        assert_eq!(t.to_compact_string(), "uurrdd");
    }

    #[test]
    fn parse_rejects_bad_chars() {
        let err = Trace::parse("uux").unwrap_err();
        assert_eq!(err.ch, 'x');
        assert_eq!(err.at, 2);
    }

    #[test]
    fn counters_and_occupancy() {
        let t = Trace::parse("uuurd").unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.up_slots(), 3);
        let occ = t.occupancy();
        assert!((occ[0] - 0.6).abs() < 1e-12);
        assert!((occ[1] - 0.2).abs() < 1e-12);
        assert!((occ[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.get(0), None);
        assert_eq!(t.occupancy(), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn get_by_slot() {
        let t = Trace::parse("urd").unwrap();
        assert_eq!(t.get(0), Some(U));
        assert_eq!(t.get(2), Some(D));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn rle_roundtrip_dense() {
        let t = Trace::parse("uuurrduuu").unwrap();
        let rle = t.to_rle();
        assert_eq!(rle.runs(), &[(U, 3), (R, 2), (D, 1), (U, 3)]);
        assert_eq!(rle.to_dense(), t);
        assert_eq!(rle.len(), 9);
    }

    #[test]
    fn rle_canonicalizes() {
        let rle = RleTrace::new(vec![(U, 2), (U, 3), (R, 0), (D, 1)]);
        assert_eq!(rle.runs(), &[(U, 5), (D, 1)]);
    }

    #[test]
    fn rle_text_roundtrip() {
        let rle = RleTrace::new(vec![(U, 12), (R, 3), (D, 40)]);
        let text = rle.to_compact_string();
        assert_eq!(text, "u12 r3 d40");
        assert_eq!(RleTrace::parse(&text).unwrap(), rle);
    }

    #[test]
    fn rle_parse_rejects_garbage() {
        assert!(RleTrace::parse("x3").is_err());
        assert!(RleTrace::parse("u").is_err());
        assert!(RleTrace::parse("uabc").is_err());
    }

    proptest! {
        #[test]
        fn prop_dense_rle_roundtrip(codes in proptest::collection::vec(0usize..3, 0..200)) {
            let t: Trace = codes.iter().map(|&i| ProcState::from_index(i)).collect();
            prop_assert_eq!(t.to_rle().to_dense(), t);
        }

        #[test]
        fn prop_text_roundtrip(codes in proptest::collection::vec(0usize..3, 0..200)) {
            let t: Trace = codes.iter().map(|&i| ProcState::from_index(i)).collect();
            let parsed = Trace::parse(&t.to_compact_string()).unwrap();
            prop_assert_eq!(parsed, t);
        }

        #[test]
        fn prop_rle_text_roundtrip(runs in proptest::collection::vec((0usize..3, 1u64..100), 0..50)) {
            let rle = RleTrace::new(
                runs.iter().map(|&(i, n)| (ProcState::from_index(i), n)).collect(),
            );
            let parsed = RleTrace::parse(&rle.to_compact_string()).unwrap();
            prop_assert_eq!(parsed, rle);
        }

        #[test]
        fn prop_rle_len_matches_dense(codes in proptest::collection::vec(0usize..3, 0..200)) {
            let t: Trace = codes.iter().map(|&i| ProcState::from_index(i)).collect();
            prop_assert_eq!(t.to_rle().len() as usize, t.len());
        }
    }
}
