//! Splittable, reproducible random-number streams.
//!
//! Reproducibility is load-bearing for the experiment methodology of the
//! paper: all 17 heuristics must be evaluated against *identical* processor
//! availability behaviour (common random numbers), otherwise the
//! degradation-from-best metric compares noise instead of policies. We
//! therefore never share a single RNG between components. Instead, a master
//! seed plus a *label path* (e.g. `["trace", scenario, trial, processor]`)
//! deterministically derives an independent stream.
//!
//! The generator is a self-contained xoshiro256++ (public-domain algorithm by
//! Blackman & Vigna) seeded through SplitMix64, so results do not depend on
//! the `rand` crate's unspecified `StdRng` algorithm and remain stable across
//! `rand` upgrades. The [`StreamRng`] type implements [`rand::RngCore`] so all
//! of `rand`'s distribution machinery works on top of it.

use rand::{RngCore, SeedableRng};

/// SplitMix64 — a tiny, high-quality 64-bit mixer.
///
/// Used (a) to expand a single `u64` seed into xoshiro's 256-bit state and
/// (b) as the hash combiner for [`SeedPath`] label paths. This is the
/// construction recommended by the xoshiro authors for seeding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new mixer from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output and advances the state.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One-shot mix of two words; used to fold path labels into a seed.
#[inline]
#[must_use]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut sm = SplitMix64::new(a ^ b.rotate_left(32).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    sm.next_u64()
}

/// A hierarchical seed derivation path.
///
/// `SeedPath::root(seed).child(label)…` folds each label into the seed with
/// [`mix64`]. Distinct paths yield (with overwhelming probability) independent
/// streams; equal paths yield identical streams. Labels are plain `u64`s; the
/// workspace uses small enums/indices (scenario id, trial, processor id, a
/// per-component discriminant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedPath {
    seed: u64,
}

impl SeedPath {
    /// Starts a derivation path at a master seed.
    #[must_use]
    pub fn root(master_seed: u64) -> Self {
        // Pre-mix so that master seeds 0, 1, 2… do not produce correlated
        // child paths for small labels.
        Self {
            seed: SplitMix64::new(master_seed).next_u64(),
        }
    }

    /// Derives a child path by folding in `label`.
    #[must_use]
    pub fn child(self, label: u64) -> Self {
        Self {
            seed: mix64(self.seed, label),
        }
    }

    /// Derives a child path from a string label (hashed FNV-1a).
    #[must_use]
    pub fn child_str(self, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.child(h)
    }

    /// The seed at the current point of the path.
    #[must_use]
    pub fn seed(self) -> u64 {
        self.seed
    }

    /// Instantiates the RNG stream for this path.
    #[must_use]
    pub fn rng(self) -> StreamRng {
        StreamRng::seed_from_u64(self.seed)
    }
}

/// xoshiro256++ pseudo-random generator.
///
/// Period 2^256 − 1, passes BigCrush; not cryptographically secure (which is
/// fine for simulation). Implements [`RngCore`]/[`SeedableRng`] so it plugs
/// into `rand`'s `Rng` extension trait.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRng {
    s: [u64; 4],
}

impl StreamRng {
    /// Advances the state and returns the next output word.
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // Standard conversion: take the top 53 bits.
        (self.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's widening-multiply method
    /// (unbiased thanks to the rejection step).
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        let n = n as u64;
        let mut x = self.step();
        let mut m = u128::from(x) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.step();
                m = u128::from(x) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn u64_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.step();
        }
        lo + self.index((span + 1) as usize) as u64
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Samples an index from a discrete distribution given by non-negative
    /// `weights` (need not be normalized). Returns `None` if the total weight
    /// is zero or not finite.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if total.is_nan() || total <= 0.0 || total.is_infinite() {
            return None;
        }
        let mut u = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0, "negative weight");
            if u < w {
                return Some(i);
            }
            u -= w;
        }
        // Floating-point slack: fall back to the last strictly positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

impl RngCore for StreamRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.step().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl SeedableRng for StreamRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // xoshiro state must not be all-zero.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values() {
        // Reference values for SplitMix64 with seed 1234567 (from the
        // reference C implementation by Sebastiano Vigna).
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_eq!(a, 6457827717110365317);
        assert_eq!(b, 3203168211198807973);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = StreamRng::seed_from_u64(42);
        let mut b = StreamRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StreamRng::seed_from_u64(1);
        let mut b = StreamRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_state_is_avoided() {
        let rng = StreamRng::from_seed([0u8; 32]);
        assert_ne!(rng.s, [0, 0, 0, 0]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StreamRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StreamRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn index_covers_all_values() {
        let mut rng = StreamRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn index_is_roughly_uniform() {
        let mut rng = StreamRng::seed_from_u64(4);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.index(8)] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow 5% slack (≫ 5 sigma).
            assert!((9_500..=10_500).contains(&c), "count {c}");
        }
    }

    #[test]
    fn u64_range_inclusive_endpoints() {
        let mut rng = StreamRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(rng.u64_range_inclusive(9, 9), 9);
        }
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.u64_range_inclusive(1, 3) {
                1 => saw_lo = true,
                3 => saw_hi = true,
                2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StreamRng::seed_from_u64(6);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = f64::from(counts[2]) / f64::from(counts[0]);
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_zero_total_is_none() {
        let mut rng = StreamRng::seed_from_u64(8);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[]), None);
    }

    #[test]
    fn seed_path_is_order_sensitive() {
        let root = SeedPath::root(1);
        assert_ne!(root.child(1).child(2).seed(), root.child(2).child(1).seed());
        assert_eq!(root.child(1).child(2).seed(), root.child(1).child(2).seed());
    }

    #[test]
    fn seed_path_children_are_independent() {
        let root = SeedPath::root(123);
        let mut a = root.child(0).rng();
        let mut b = root.child(1).rng();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn string_labels_derive_distinct_paths() {
        let root = SeedPath::root(5);
        assert_ne!(
            root.child_str("trace").seed(),
            root.child_str("sched").seed()
        );
        assert_eq!(
            root.child_str("trace").seed(),
            root.child_str("trace").seed()
        );
    }

    #[test]
    fn fill_bytes_handles_non_multiple_lengths() {
        let mut rng = StreamRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StreamRng::seed_from_u64(12);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn rand_trait_integration() {
        use rand::Rng;
        let mut rng = StreamRng::seed_from_u64(13);
        let x: f64 = rng.random_range(2.0..3.0);
        assert!((2.0..3.0).contains(&x));
        let y: u32 = rng.random_range(0..10);
        assert!(y < 10);
    }
}
