//! # vg-des — deterministic simulation substrate
//!
//! Foundations shared by every other crate in the `volatile-grid` workspace:
//!
//! * [`rng`] — splittable, reproducible random-number streams. Every stochastic
//!   component in the workspace draws from a [`rng::StreamRng`] derived from a
//!   master seed and a *label path*, so that two runs with the same seed are
//!   bit-identical and so that independent components (e.g. the availability
//!   trace of processor 7 in trial 3) never share a stream.
//! * [`calendar`] — a deterministic discrete-event calendar with stable
//!   tie-breaking (FIFO among simultaneous events).
//! * [`stats`] — numerically stable online statistics (Welford), summaries,
//!   histograms and quantiles used by the experiment harness.
//! * [`par`] — a small scoped thread pool (`std::thread::scope` +
//!   crossbeam channels) used to fan out independent simulation instances
//!   across cores while keeping each instance fully deterministic.
//! * [`det`] — fixed-seed hash collections ([`det::DetHashMap`] /
//!   [`det::DetHashSet`]): the sanctioned replacement for std's
//!   randomly-seeded maps wherever iteration order could leak into results.
//!
//! The simulation model of the paper is *slot based* (discretized time,
//! Section 3.2 of Casanova et al.), so most of the workspace only needs the
//! [`Slot`] clock type; the event calendar is used where sparse events are more
//! natural (e.g. trace run-lengths) and by downstream users of the library.

pub mod calendar;
pub mod det;
pub mod par;
pub mod rng;
pub mod stats;

/// Discrete time slot index.
///
/// The paper discretizes time (Section 3.2): computations and transfers take
/// an integer number of slots and state changes happen at slot boundaries.
/// Slots are numbered from 0.
pub type Slot = u64;

/// A span measured in slots.
pub type SlotSpan = u64;

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::calendar::EventQueue;
    pub use crate::par::{par_map, ParallelismConfig};
    pub use crate::rng::{SeedPath, StreamRng};
    pub use crate::stats::{Histogram, OnlineStats, Summary};
    pub use crate::{Slot, SlotSpan};
}
