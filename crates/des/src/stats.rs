//! Numerically stable online statistics.
//!
//! The experiment harness aggregates hundreds of thousands of makespans and
//! degradation-from-best percentages; this module provides Welford's online
//! mean/variance, five-number summaries, fixed-width histograms and exact
//! quantiles over collected samples.

/// Welford online accumulator for mean and variance.
///
/// Single pass, O(1) memory, numerically stable for large counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (parallel reduction), Chan et al. update.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Snapshot as a [`Summary`].
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// Immutable snapshot of an [`OnlineStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// Two-sided confidence interval for the mean, using the normal
/// approximation with a small-sample t correction.
///
/// For `count < 2` the interval collapses to the mean. The t quantiles are
/// tabulated for 95% and 99% levels (the levels experiment reports use);
/// other levels fall back to the normal quantile, which is accurate for the
/// sample sizes campaigns produce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// The level requested (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// True when `x` lies inside the interval.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }
}

/// Two-sided t quantile for the given level and degrees of freedom
/// (tabulated for 95%/99%, converging to the normal quantile).
fn t_quantile(level: f64, df: u64) -> f64 {
    // Rows: df 1..=30 then asymptotic; classic two-sided t table.
    const T95: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    const T99: [f64; 30] = [
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
        2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
        2.771, 2.763, 2.756, 2.750,
    ];
    let idx = (df.clamp(1, 30) - 1) as usize;
    if (level - 0.95).abs() < 1e-9 {
        if df <= 30 {
            T95[idx]
        } else {
            1.960
        }
    } else if (level - 0.99).abs() < 1e-9 {
        if df <= 30 {
            T99[idx]
        } else {
            2.576
        }
    } else {
        // Normal approximation for other levels via inverse error function
        // (Acklam-style rational approximation is overkill here; campaigns
        // only ask for 95/99).
        1.960
    }
}

impl OnlineStats {
    /// Confidence interval for the mean at `level` (0.95 or 0.99).
    #[must_use]
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        assert!((0.5..1.0).contains(&level), "level out of range: {level}");
        let mean = self.mean();
        if self.count() < 2 {
            return ConfidenceInterval {
                lo: mean,
                hi: mean,
                level,
            };
        }
        let t = t_quantile(level, self.count() - 1);
        let h = t * self.std_err();
        ConfidenceInterval {
            lo: mean - h,
            hi: mean + h,
            level,
        }
    }
}

/// Exact quantile of a sample using linear interpolation (type-7, the
/// default of R/NumPy). `q` in `[0, 1]`. Returns `None` on an empty slice.
///
/// Sorts a copy; intended for end-of-run reporting, not hot loops.
#[must_use]
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let mut xs: Vec<f64> = samples.to_vec();
    // total_cmp keeps this total (NaN sorts above +inf) instead of panicking
    // mid-report; a NaN sample then surfaces as a NaN quantile, which is the
    // honest answer.
    xs.sort_by(f64::total_cmp);
    let h = (xs.len() as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Some(xs[lo] + (h - lo as f64) * (xs[hi] - xs[lo]))
}

/// Median via [`quantile`].
#[must_use]
pub fn median(samples: &[f64]) -> Option<f64> {
    quantile(samples, 0.5)
}

/// Fixed-width histogram over `[lo, hi)` with saturating edge bins.
///
/// Observations below `lo` land in the first bin, at or above `hi` in the
/// last — the histogram never loses counts, which keeps sanity checks simple.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range is empty");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        let n = self.bins.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            ((frac * n as f64) as usize).min(n - 1)
        };
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw bin counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `[lo, hi)` bounds of bin `i`.
    #[must_use]
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Renders a compact ASCII bar chart (for terminal reports).
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (a, b) = self.bin_range(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{a:>9.2},{b:>9.2}) {c:>8} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [1.5, 2.5, 3.0, -1.0, 8.25, 0.0, 4.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let (mean, var) = naive_mean_var(&xs);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.count(), xs.len() as u64);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 8.25);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut s = OnlineStats::new();
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(median(&[5.0]), Some(5.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_is_order_invariant() {
        let a = [3.0, 1.0, 2.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(quantile(&a, 0.25), quantile(&b, 0.25));
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(-1.0); // below -> first bin
        h.push(0.0);
        h.push(9.9999);
        h.push(10.0); // at hi -> last bin
        h.push(250.0); // above -> last bin
        h.push(5.0);
        assert_eq!(h.count(), 6);
        assert_eq!(h.bins(), &[2, 0, 1, 0, 3]);
        assert_eq!(h.bin_range(0), (0.0, 2.0));
        assert_eq!(h.bin_range(4), (8.0, 10.0));
    }

    #[test]
    fn histogram_never_loses_counts() {
        let mut h = Histogram::new(-1.0, 1.0, 7);
        for i in 0..1000 {
            h.push((i as f64).cos() * 3.0);
        }
        assert_eq!(h.bins().iter().sum::<u64>(), 1000);
    }

    #[test]
    fn histogram_render_is_nonempty() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(0.1);
        let s = h.render(10);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn confidence_interval_basics() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(x);
        }
        let ci95 = s.confidence_interval(0.95);
        let ci99 = s.confidence_interval(0.99);
        assert!(ci95.contains(s.mean()));
        assert!(ci95.lo < s.mean() && s.mean() < ci95.hi);
        // Higher level ⇒ wider interval.
        assert!(ci99.half_width() > ci95.half_width());
        // Known value: mean 3, sd √2.5, se √0.5, t(4, .95) = 2.776.
        let expect = 2.776 * (0.5f64).sqrt();
        assert!((ci95.half_width() - expect).abs() < 1e-3);
    }

    #[test]
    fn confidence_interval_degenerate_cases() {
        let empty = OnlineStats::new();
        let ci = empty.confidence_interval(0.95);
        assert_eq!(ci.lo, ci.hi);

        let mut one = OnlineStats::new();
        one.push(7.0);
        let ci = one.confidence_interval(0.95);
        assert_eq!((ci.lo, ci.hi), (7.0, 7.0));
    }

    #[test]
    fn confidence_interval_narrows_with_samples() {
        let mut small = OnlineStats::new();
        let mut big = OnlineStats::new();
        for i in 0..10 {
            small.push(f64::from(i % 5));
        }
        for i in 0..10_000 {
            big.push(f64::from(i % 5));
        }
        assert!(
            big.confidence_interval(0.95).half_width()
                < small.confidence_interval(0.95).half_width()
        );
    }

    #[test]
    #[should_panic(expected = "level out of range")]
    fn confidence_interval_rejects_bad_level() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        let _ = s.confidence_interval(0.2);
    }

    #[test]
    fn summary_display_is_stable() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(3.0);
        let text = s.summary().to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=2.0000"));
    }
}
