//! Deterministic hash collections.
//!
//! `std`'s default `RandomState` seeds SipHash from process-global entropy,
//! so `HashMap`/`HashSet` iteration order — and anything order-dependent
//! downstream of it — varies from run to run. That is exactly the class of
//! nondeterminism this workspace bans (bit-identical `SimReport`s across
//! runs, layouts, and parallelism), and the `vg-tidy` `default_hasher` rule
//! rejects the std types in library code at the source level.
//!
//! This module provides the sanctioned replacement: [`DetHashMap`] /
//! [`DetHashSet`] over a fixed-seed FxHash-style hasher ([`DetHasher`]).
//! Same asymptotics as std's, byte-for-byte reproducible across processes
//! and platforms (the mixing is pure 64-bit arithmetic, no host entropy).
//!
//! FxHash (rustc's internal hasher) is *not* DoS-resistant — that is a
//! deliberate trade: these collections key simulation-internal state
//! (memoization tables, visited sets), never attacker-controlled input.

// tidy:allow(default_hasher): imported to re-export with the fixed-seed hasher below.
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash64 multiplier: `2^64 / φ`, an odd constant with good bit
/// dispersion under multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fixed-seed, entropy-free [`Hasher`] (FxHash-style): each word is
/// folded in with a rotate-xor-multiply. Identical input always produces
/// an identical hash, in every process, on every platform.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetHasher(u64);

impl DetHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Fixed-seed `BuildHasher` for [`DetHashMap`] / [`DetHashSet`].
pub type DetState = BuildHasherDefault<DetHasher>;

/// A `HashMap` with a deterministic, fixed-seed hasher.
// tidy:allow(default_hasher): this alias IS the sanctioned deterministic replacement.
pub type DetHashMap<K, V> = HashMap<K, V, DetState>;

/// A `HashSet` with a deterministic, fixed-seed hasher.
// tidy:allow(default_hasher): this alias IS the sanctioned deterministic replacement.
pub type DetHashSet<T> = HashSet<T, DetState>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        DetState::default().hash_one(v)
    }

    #[test]
    fn hashes_are_stable_across_builders() {
        // Two independently constructed states agree — no per-instance or
        // per-process entropy anywhere.
        let a = DetState::default().hash_one(("abc", 7u64, [1u16, 2, 3]));
        let b = DetState::default().hash_one(("abc", 7u64, [1u16, 2, 3]));
        assert_eq!(a, b);
    }

    #[test]
    fn pinned_hash_values() {
        // Golden values: if these move, every persisted artifact or test
        // relying on DetHash iteration order silently changes meaning.
        assert_eq!(hash_of(&0u64), 0);
        assert_eq!(hash_of(&1u64), SEED);
        assert_eq!(hash_of(&"slot"), 10_683_801_592_150_947_110);
    }

    #[test]
    fn tail_bytes_disambiguate() {
        // The length fold keeps short prefixes from colliding trivially.
        assert_ne!(hash_of(&[1u8, 0]), hash_of(&[1u8]));
        assert_ne!(hash_of(b"ab".as_slice()), hash_of(b"ab\0".as_slice()));
    }

    #[test]
    fn det_set_iteration_is_reproducible() {
        let mk = || {
            let mut s: DetHashSet<u64> = DetHashSet::default();
            for v in [9, 1, 52, 3, 17, 1000, 4] {
                s.insert(v);
            }
            s.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
