//! Deterministic discrete-event calendar.
//!
//! A thin wrapper over a binary heap keyed by `(time, sequence)` where the
//! sequence number makes pop order *stable*: events scheduled earlier pop
//! first among equals (FIFO). Determinism matters because downstream
//! consumers drive RNG streams from event order.

use crate::Slot;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Slot at which the event fires.
    pub at: Slot,
    /// Insertion sequence number (unique per queue).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour on (at, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue (min-heap on time, FIFO among ties).
///
/// ```
/// use vg_des::calendar::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5, "b");
/// q.schedule(3, "a");
/// q.schedule(5, "c");
/// assert_eq!(q.pop().map(|s| (s.at, s.event)), Some((3, "a")));
/// assert_eq!(q.pop().map(|s| (s.at, s.event)), Some((5, "b")));
/// assert_eq!(q.pop().map(|s| (s.at, s.event)), Some((5, "c")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Slot,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue with the clock at slot 0.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Current clock value: the time of the last popped event (0 initially).
    #[must_use]
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute slot `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event), which
    /// would indicate a causality bug in the caller.
    pub fn schedule(&mut self, at: Slot, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` `delay` slots after the current clock.
    pub fn schedule_in(&mut self, delay: Slot, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Time of the next event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Slot> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let next = self.heap.pop()?;
        self.now = next.at;
        Some(next)
    }

    /// Pops all events that fire at the same (earliest) slot, in FIFO order.
    pub fn pop_simultaneous(&mut self) -> Vec<Scheduled<E>> {
        let Some(t) = self.peek_time() else {
            return Vec::new();
        };
        let mut batch = Vec::new();
        while self.peek_time() == Some(t) {
            batch.push(self.pop().expect("peeked"));
        }
        batch
    }

    /// Drops every pending event satisfying the predicate; returns how many
    /// were removed. O(n) — intended for infrequent cancellation.
    pub fn cancel_where(&mut self, mut pred: impl FnMut(&E) -> bool) -> usize {
        let before = self.heap.len();
        let kept: Vec<Scheduled<E>> = self.heap.drain().filter(|s| !pred(&s.event)).collect();
        self.heap = kept.into_iter().collect();
        before - self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(10, 'x');
        q.schedule(2, 'y');
        q.schedule(7, 'z');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!['y', 'z', 'x']);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(1, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(4, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 4);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5, ());
        q.pop();
        q.schedule(3, ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(5, 'a');
        q.pop();
        q.schedule_in(2, 'b');
        let e = q.pop().unwrap();
        assert_eq!((e.at, e.event), (7, 'b'));
    }

    #[test]
    fn pop_simultaneous_takes_whole_batch() {
        let mut q = EventQueue::new();
        q.schedule(3, 'a');
        q.schedule(3, 'b');
        q.schedule(4, 'c');
        let batch: Vec<char> = q.pop_simultaneous().into_iter().map(|s| s.event).collect();
        assert_eq!(batch, vec!['a', 'b']);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_simultaneous_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop_simultaneous().is_empty());
    }

    #[test]
    fn cancel_where_removes_matching() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.schedule(u64::from(i), i);
        }
        let removed = q.cancel_where(|&e| e % 2 == 0);
        assert_eq!(removed, 5);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn cancel_preserves_fifo_order_among_ties() {
        let mut q = EventQueue::new();
        q.schedule(1, 10u32);
        q.schedule(1, 11);
        q.schedule(1, 12);
        q.cancel_where(|&e| e == 11);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![10, 12]);
    }
}
