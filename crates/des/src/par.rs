//! Scoped work-stealing-lite thread pool for experiment fan-out.
//!
//! The evaluation campaign of the paper runs hundreds of thousands of
//! *independent* simulation instances (Section 7: 296,400). Each instance is
//! single-threaded and deterministic; only the fan-out is parallel. This
//! module provides an order-preserving [`par_map`] built on
//! [`std::thread::scope`] and a shared atomic work index — no unsafe code, no
//! global pool, no dependency on rayon.
//!
//! Work items are pulled one at a time from a shared counter, which balances
//! load well when item costs vary by orders of magnitude (long makespans on
//! unlucky availability draws).

use parking_lot::Mutex;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads to use for a parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelismConfig {
    /// Use `std::thread::available_parallelism()` (min 1).
    #[default]
    Auto,
    /// Use exactly this many threads.
    Fixed(NonZeroUsize),
    /// Run everything on the calling thread (useful for debugging and for
    /// getting clean backtraces out of a failing instance).
    Sequential,
}

impl ParallelismConfig {
    /// Resolves to a concrete thread count (≥ 1).
    #[must_use]
    pub fn threads(self) -> usize {
        match self {
            Self::Auto => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
            Self::Fixed(n) => n.get(),
            Self::Sequential => 1,
        }
    }

    /// Builds a fixed configuration, clamping 0 to sequential.
    #[must_use]
    pub fn fixed(n: usize) -> Self {
        NonZeroUsize::new(n).map_or(Self::Sequential, Self::Fixed)
    }
}

/// Applies `f` to every item of `items`, in parallel, returning outputs in
/// input order.
///
/// `f` must be `Sync` (it is shared by reference across workers); items are
/// taken by reference. Panics in workers are propagated to the caller after
/// the scope joins (the first panic wins).
///
/// ```
/// use vg_des::par::{par_map, ParallelismConfig};
///
/// let xs: Vec<u64> = (0..100).collect();
/// let ys = par_map(&xs, ParallelismConfig::Auto, |&x| x * x);
/// assert_eq!(ys[7], 49);
/// assert_eq!(ys.len(), 100);
/// ```
pub fn par_map<T, R, F>(items: &[T], cfg: ParallelismConfig, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = cfg.threads().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    // Each completed result is written to its own slot; the mutex only guards
    // the brief write (contention is negligible next to item cost).
    let results = Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock()[i] = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("worker completed every claimed slot"))
        .collect()
}

/// Like [`par_map`] but with **per-thread state** and **chunked claiming**:
/// each worker builds one `state = init()` when it starts and threads it
/// through every item it processes, and items are claimed `chunk_size` at a
/// time from the shared counter (one atomic pull per chunk instead of one
/// per item).
///
/// This is the campaign fan-out primitive: `init` builds a warmed simulation
/// arena once per thread, and every instance the thread pulls reuses the
/// arena's buffers instead of reallocating them. Chunking additionally lets
/// adjacent work units (all trials of one scenario) land on the same worker.
///
/// Output order is input order, exactly as [`par_map`]. `f` receives
/// `&mut S` plus the item; determinism is up to the caller (seed per item,
/// not per thread, and the result is independent of the thread schedule).
///
/// ```
/// use vg_des::par::{par_map_init, ParallelismConfig};
///
/// let xs: Vec<u64> = (0..100).collect();
/// let ys = par_map_init(&xs, ParallelismConfig::fixed(4), 8, || 0u64, |scratch, &x| {
///     *scratch += 1; // per-thread state, invisible to the output
///     x * x
/// });
/// assert_eq!(ys[7], 49);
/// ```
pub fn par_map_init<T, R, S, I, F>(
    items: &[T],
    cfg: ParallelismConfig,
    chunk_size: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    par_map_init_consume(items, cfg, chunk_size, init, f, |_, r| out.push(r));
    out
}

/// Streaming variant of [`par_map_init`]: instead of materializing a
/// `Vec<R>`, calls `consume(index, result)` on the **calling thread**, in
/// strictly increasing index order, as results become available.
///
/// This is what keeps campaign memory flat: per-instance results are folded
/// into per-cell statistics the moment they arrive and then dropped, so the
/// resident set is O(cells) rather than O(instances). Because `consume`
/// always observes results in input order, a fold through it is bit-identical
/// to the same fold over a sequential run — no merge-order nondeterminism.
///
/// Workers send finished chunks over a channel; the caller holds a reorder
/// buffer of out-of-order chunks. The buffer is usually O(threads) chunks;
/// the worst case (the very first chunk is pathologically slow) is bounded
/// by O(items). A panicking worker is propagated to the caller after the
/// scope joins; `consume` will then have seen only a prefix.
pub fn par_map_init_consume<T, R, S, I, F>(
    items: &[T],
    cfg: ParallelismConfig,
    chunk_size: usize,
    init: I,
    f: F,
    mut consume: impl FnMut(usize, R),
) where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let chunk = chunk_size.max(1);
    let n_chunks = items.len().div_ceil(chunk);
    let threads = cfg.threads().min(n_chunks.max(1));
    if threads <= 1 {
        let mut state = init();
        for (i, item) in items.iter().enumerate() {
            consume(i, f(&mut state, item));
        }
        return;
    }

    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<R>)>();
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let start = c * chunk;
                    let end = (start + chunk).min(items.len());
                    let results: Vec<R> = items[start..end]
                        .iter()
                        .map(|it| f(&mut state, it))
                        .collect();
                    if tx.send((c, results)).is_err() {
                        break; // receiver gone: the caller is unwinding
                    }
                }
            });
        }
        drop(tx);

        // Reorder out-of-order chunks so `consume` sees input order.
        let mut pending: Vec<Option<Vec<R>>> = Vec::new();
        pending.resize_with(n_chunks, || None);
        let mut next_consume = 0usize;
        while next_consume < n_chunks {
            // Err means every sender is gone — a worker panicked before
            // finishing its chunk; stop and let the scope propagate it.
            let Ok((c, results)) = rx.recv() else { break };
            pending[c] = Some(results);
            while next_consume < n_chunks {
                let Some(results) = pending[next_consume].take() else {
                    break;
                };
                let base = next_consume * chunk;
                for (k, r) in results.into_iter().enumerate() {
                    consume(base + k, r);
                }
                next_consume += 1;
            }
        }
    });
}

/// Like [`par_map`] but for side-effecting work; preserves nothing.
pub fn par_for_each<T, F>(items: &[T], cfg: ParallelismConfig, f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    let threads = cfg.threads().min(items.len().max(1));
    if threads <= 1 {
        items.iter().for_each(&f);
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                f(&items[i]);
            });
        }
    });
}

/// Fold results of a parallel map without materializing the mapped vector:
/// each thread folds locally with `fold`, locals are combined with `combine`.
///
/// `init` must produce an identity for `combine`. The combination order is
/// unspecified, so `combine` should be associative and commutative (e.g.
/// statistics merge, sum, max).
pub fn par_fold<T, A, F, G, I>(
    items: &[T],
    cfg: ParallelismConfig,
    init: I,
    fold: F,
    combine: G,
) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, &T) -> A + Sync,
    G: Fn(A, A) -> A,
{
    let threads = cfg.threads().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().fold(init(), &fold);
    }
    let next = AtomicUsize::new(0);
    let locals: Mutex<Vec<A>> = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut acc = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    acc = fold(acc, &items[i]);
                }
                locals.lock().push(acc);
            });
        }
    });
    locals.into_inner().into_iter().fold(init(), combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let ys = par_map(&xs, ParallelismConfig::fixed(4), |&x| x + 1);
        assert_eq!(ys, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_sequential() {
        let xs: Vec<u64> = (0..257).collect();
        let seq = par_map(&xs, ParallelismConfig::Sequential, |&x| x * 3);
        let par = par_map(&xs, ParallelismConfig::fixed(8), |&x| x * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_empty_input() {
        let xs: Vec<u32> = vec![];
        let ys = par_map(&xs, ParallelismConfig::Auto, |&x| x);
        assert!(ys.is_empty());
    }

    #[test]
    fn par_map_single_item() {
        let ys = par_map(&[41], ParallelismConfig::fixed(16), |&x| x + 1);
        assert_eq!(ys, vec![42]);
    }

    #[test]
    fn par_map_uneven_costs_balance() {
        // Items with wildly varying cost still all complete.
        let xs: Vec<u64> = (0..64).collect();
        let ys = par_map(&xs, ParallelismConfig::fixed(4), |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(ys, xs);
    }

    #[test]
    fn par_map_init_matches_par_map() {
        let xs: Vec<u64> = (0..257).collect();
        let plain = par_map(&xs, ParallelismConfig::Sequential, |&x| x * 3 + 1);
        for chunk in [1usize, 3, 16, 300] {
            for threads in [1usize, 2, 8] {
                let with_state = par_map_init(
                    &xs,
                    ParallelismConfig::fixed(threads),
                    chunk,
                    || 0u64,
                    |acc, &x| {
                        *acc += 1;
                        x * 3 + 1
                    },
                );
                assert_eq!(with_state, plain, "chunk={chunk} threads={threads}");
            }
        }
    }

    #[test]
    fn par_map_init_consume_is_in_order_and_complete() {
        let xs: Vec<usize> = (0..500).collect();
        for chunk in [1usize, 7, 64] {
            let mut seen = Vec::new();
            par_map_init_consume(
                &xs,
                ParallelismConfig::fixed(4),
                chunk,
                || (),
                |(), &x| x * 2,
                |i, r| {
                    assert_eq!(seen.len(), i, "consume must run in input order");
                    seen.push(r);
                },
            );
            let expect: Vec<usize> = xs.iter().map(|&x| x * 2).collect();
            assert_eq!(seen, expect, "chunk={chunk}");
        }
    }

    #[test]
    fn par_map_init_state_is_per_thread() {
        use std::sync::atomic::AtomicU64;
        // Each item bumps its thread's local counter; the counters' total
        // must equal the item count no matter how work was distributed.
        let total = AtomicU64::new(0);
        struct Local<'a> {
            n: u64,
            total: &'a AtomicU64,
        }
        impl Drop for Local<'_> {
            fn drop(&mut self) {
                self.total.fetch_add(self.n, Ordering::Relaxed);
            }
        }
        let xs: Vec<u32> = (0..301).collect();
        let ys = par_map_init(
            &xs,
            ParallelismConfig::fixed(3),
            5,
            || Local {
                n: 0,
                total: &total,
            },
            |local, &x| {
                local.n += 1;
                x
            },
        );
        assert_eq!(ys, xs);
        assert_eq!(total.load(Ordering::Relaxed), 301);
    }

    #[test]
    fn par_map_init_empty_and_tiny() {
        let empty: Vec<u8> = vec![];
        assert!(par_map_init(&empty, ParallelismConfig::Auto, 4, || (), |(), &x| x).is_empty());
        let one = par_map_init(
            &[9u8],
            ParallelismConfig::fixed(8),
            4,
            || (),
            |(), &x| x + 1,
        );
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn par_map_init_worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let xs: Vec<u32> = (0..64).collect();
            par_map_init(
                &xs,
                ParallelismConfig::fixed(2),
                4,
                || (),
                |(), &x| {
                    assert!(x != 33, "boom");
                    x
                },
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_for_each_visits_everything() {
        use std::sync::atomic::AtomicU64;
        let sum = AtomicU64::new(0);
        let xs: Vec<u64> = (1..=100).collect();
        par_for_each(&xs, ParallelismConfig::fixed(3), |&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn par_fold_merges_statistics() {
        let xs: Vec<f64> = (0..10_000).map(f64::from).collect();
        let par = par_fold(
            &xs,
            ParallelismConfig::fixed(7),
            OnlineStats::new,
            |mut acc, &x| {
                acc.push(x);
                acc
            },
            |mut a, b| {
                a.merge(&b);
                a
            },
        );
        let mut seq = OnlineStats::new();
        for &x in &xs {
            seq.push(x);
        }
        assert_eq!(par.count(), seq.count());
        assert!((par.mean() - seq.mean()).abs() < 1e-9);
        assert!((par.variance() - seq.variance()).abs() < 1e-6);
    }

    #[test]
    fn parallelism_config_resolution() {
        assert_eq!(ParallelismConfig::Sequential.threads(), 1);
        assert_eq!(ParallelismConfig::fixed(5).threads(), 5);
        assert_eq!(ParallelismConfig::fixed(0).threads(), 1);
        assert!(ParallelismConfig::Auto.threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let xs: Vec<u32> = (0..16).collect();
            par_map(&xs, ParallelismConfig::fixed(2), |&x| {
                assert!(x != 7, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
