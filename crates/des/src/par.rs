//! Scoped work-stealing-lite thread pool for experiment fan-out.
//!
//! The evaluation campaign of the paper runs hundreds of thousands of
//! *independent* simulation instances (Section 7: 296,400). Each instance is
//! single-threaded and deterministic; only the fan-out is parallel. This
//! module provides an order-preserving [`par_map`] built on
//! [`std::thread::scope`] and a shared atomic work index — no unsafe code, no
//! global pool, no dependency on rayon.
//!
//! Work items are pulled one at a time from a shared counter, which balances
//! load well when item costs vary by orders of magnitude (long makespans on
//! unlucky availability draws).

use parking_lot::Mutex;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads to use for a parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum ParallelismConfig {
    /// Use `std::thread::available_parallelism()` (min 1).
    #[default]
    Auto,
    /// Use exactly this many threads.
    Fixed(NonZeroUsize),
    /// Run everything on the calling thread (useful for debugging and for
    /// getting clean backtraces out of a failing instance).
    Sequential,
}


impl ParallelismConfig {
    /// Resolves to a concrete thread count (≥ 1).
    #[must_use]
    pub fn threads(self) -> usize {
        match self {
            Self::Auto => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
            Self::Fixed(n) => n.get(),
            Self::Sequential => 1,
        }
    }

    /// Builds a fixed configuration, clamping 0 to sequential.
    #[must_use]
    pub fn fixed(n: usize) -> Self {
        NonZeroUsize::new(n).map_or(Self::Sequential, Self::Fixed)
    }
}

/// Applies `f` to every item of `items`, in parallel, returning outputs in
/// input order.
///
/// `f` must be `Sync` (it is shared by reference across workers); items are
/// taken by reference. Panics in workers are propagated to the caller after
/// the scope joins (the first panic wins).
///
/// ```
/// use vg_des::par::{par_map, ParallelismConfig};
///
/// let xs: Vec<u64> = (0..100).collect();
/// let ys = par_map(&xs, ParallelismConfig::Auto, |&x| x * x);
/// assert_eq!(ys[7], 49);
/// assert_eq!(ys.len(), 100);
/// ```
pub fn par_map<T, R, F>(items: &[T], cfg: ParallelismConfig, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = cfg.threads().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    // Each completed result is written to its own slot; the mutex only guards
    // the brief write (contention is negligible next to item cost).
    let results = Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock()[i] = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("worker completed every claimed slot"))
        .collect()
}

/// Like [`par_map`] but for side-effecting work; preserves nothing.
pub fn par_for_each<T, F>(items: &[T], cfg: ParallelismConfig, f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    let threads = cfg.threads().min(items.len().max(1));
    if threads <= 1 {
        items.iter().for_each(&f);
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                f(&items[i]);
            });
        }
    });
}

/// Fold results of a parallel map without materializing the mapped vector:
/// each thread folds locally with `fold`, locals are combined with `combine`.
///
/// `init` must produce an identity for `combine`. The combination order is
/// unspecified, so `combine` should be associative and commutative (e.g.
/// statistics merge, sum, max).
pub fn par_fold<T, A, F, G, I>(items: &[T], cfg: ParallelismConfig, init: I, fold: F, combine: G) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, &T) -> A + Sync,
    G: Fn(A, A) -> A,
{
    let threads = cfg.threads().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().fold(init(), &fold);
    }
    let next = AtomicUsize::new(0);
    let locals: Mutex<Vec<A>> = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut acc = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    acc = fold(acc, &items[i]);
                }
                locals.lock().push(acc);
            });
        }
    });
    locals
        .into_inner()
        .into_iter()
        .fold(init(), combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let ys = par_map(&xs, ParallelismConfig::fixed(4), |&x| x + 1);
        assert_eq!(ys, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_sequential() {
        let xs: Vec<u64> = (0..257).collect();
        let seq = par_map(&xs, ParallelismConfig::Sequential, |&x| x * 3);
        let par = par_map(&xs, ParallelismConfig::fixed(8), |&x| x * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_empty_input() {
        let xs: Vec<u32> = vec![];
        let ys = par_map(&xs, ParallelismConfig::Auto, |&x| x);
        assert!(ys.is_empty());
    }

    #[test]
    fn par_map_single_item() {
        let ys = par_map(&[41], ParallelismConfig::fixed(16), |&x| x + 1);
        assert_eq!(ys, vec![42]);
    }

    #[test]
    fn par_map_uneven_costs_balance() {
        // Items with wildly varying cost still all complete.
        let xs: Vec<u64> = (0..64).collect();
        let ys = par_map(&xs, ParallelismConfig::fixed(4), |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(ys, xs);
    }

    #[test]
    fn par_for_each_visits_everything() {
        use std::sync::atomic::AtomicU64;
        let sum = AtomicU64::new(0);
        let xs: Vec<u64> = (1..=100).collect();
        par_for_each(&xs, ParallelismConfig::fixed(3), |&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn par_fold_merges_statistics() {
        let xs: Vec<f64> = (0..10_000).map(f64::from).collect();
        let par = par_fold(
            &xs,
            ParallelismConfig::fixed(7),
            OnlineStats::new,
            |mut acc, &x| {
                acc.push(x);
                acc
            },
            |mut a, b| {
                a.merge(&b);
                a
            },
        );
        let mut seq = OnlineStats::new();
        for &x in &xs {
            seq.push(x);
        }
        assert_eq!(par.count(), seq.count());
        assert!((par.mean() - seq.mean()).abs() < 1e-9);
        assert!((par.variance() - seq.variance()).abs() < 1e-6);
    }

    #[test]
    fn parallelism_config_resolution() {
        assert_eq!(ParallelismConfig::Sequential.threads(), 1);
        assert_eq!(ParallelismConfig::fixed(5).threads(), 5);
        assert_eq!(ParallelismConfig::fixed(0).threads(), 1);
        assert!(ParallelismConfig::Auto.threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let xs: Vec<u32> = (0..16).collect();
            par_map(&xs, ParallelismConfig::fixed(2), |&x| {
                assert!(x != 7, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
