//! Discrete positive sojourn-time distributions.
//!
//! The paper notes (Section 1, Section 8) that real desktop-grid availability
//! intervals are *not* exponential/geometric: empirical studies fit Weibull
//! and log-normal interval durations. To support the paper's "future work"
//! robustness experiments, this module provides samplers for sojourn times
//! measured in whole slots (support `{1, 2, 3, …}`): the memoryless geometric
//! (equivalent to the Markov model), discretized Weibull, discretized
//! log-normal, deterministic, and uniform.
//!
//! All samplers use inverse-transform or Box–Muller on top of the workspace
//! RNG so no external distribution crate is required.

use serde::{Deserialize, Serialize};
use vg_des::rng::StreamRng;

/// Samples a standard normal via Box–Muller (the cached second value is
/// intentionally discarded to keep the sampler stateless).
#[must_use]
pub fn standard_normal(rng: &mut StreamRng) -> f64 {
    // Avoid ln(0): u1 in (0, 1].
    let u1 = 1.0 - rng.f64();
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A discrete sojourn-time distribution over `{1, 2, 3, …}` slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SojournDist {
    /// Geometric with success probability `p ∈ (0, 1]`:
    /// `Pr(T = t) = p (1−p)^{t−1}`; mean `1/p`. A semi-Markov process with
    /// geometric sojourns *is* the Markov model.
    Geometric {
        /// Per-slot exit probability.
        p: f64,
    },
    /// Continuous Weibull(scale λ, shape k) rounded up to a whole slot.
    /// `shape < 1` gives heavy tails (long availability stretches mixed with
    /// short ones), the regime reported for desktop grids.
    Weibull {
        /// Scale λ > 0 (slots).
        scale: f64,
        /// Shape k > 0.
        shape: f64,
    },
    /// Continuous log-normal (parameters of the underlying normal) rounded up.
    LogNormal {
        /// Mean of `ln T`.
        mu: f64,
        /// Std-dev of `ln T` (> 0).
        sigma: f64,
    },
    /// Always exactly `t` slots (useful for crafted tests).
    Deterministic {
        /// The constant sojourn.
        t: u64,
    },
    /// Uniform over the inclusive integer range `[lo, hi]`.
    Uniform {
        /// Smallest sojourn.
        lo: u64,
        /// Largest sojourn.
        hi: u64,
    },
}

impl SojournDist {
    /// Validates parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Self::Geometric { p } => {
                if p > 0.0 && p <= 1.0 {
                    Ok(())
                } else {
                    Err(format!("geometric p out of (0,1]: {p}"))
                }
            }
            Self::Weibull { scale, shape } => {
                if scale > 0.0 && shape > 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "weibull parameters must be positive: λ={scale}, k={shape}"
                    ))
                }
            }
            Self::LogNormal { sigma, .. } => {
                if sigma > 0.0 {
                    Ok(())
                } else {
                    Err(format!("lognormal sigma must be positive: {sigma}"))
                }
            }
            Self::Deterministic { t } => {
                if t >= 1 {
                    Ok(())
                } else {
                    Err("deterministic sojourn must be ≥ 1 slot".into())
                }
            }
            Self::Uniform { lo, hi } => {
                if lo >= 1 && lo <= hi {
                    Ok(())
                } else {
                    Err(format!("uniform range invalid: [{lo}, {hi}]"))
                }
            }
        }
    }

    /// Draws a sojourn length in slots (always ≥ 1).
    #[must_use]
    pub fn sample(&self, rng: &mut StreamRng) -> u64 {
        match *self {
            Self::Geometric { p } => {
                if p >= 1.0 {
                    return 1;
                }
                // Inverse transform: T = ceil(ln U / ln(1−p)).
                let u = 1.0 - rng.f64(); // (0, 1]
                let t = (u.ln() / (1.0 - p).ln()).ceil();
                if t < 1.0 {
                    1
                } else {
                    t as u64
                }
            }
            Self::Weibull { scale, shape } => {
                let u = 1.0 - rng.f64(); // (0, 1]
                let x = scale * (-u.ln()).powf(1.0 / shape);
                x.ceil().max(1.0) as u64
            }
            Self::LogNormal { mu, sigma } => {
                let x = (mu + sigma * standard_normal(rng)).exp();
                x.ceil().max(1.0) as u64
            }
            Self::Deterministic { t } => t.max(1),
            Self::Uniform { lo, hi } => rng.u64_range_inclusive(lo.max(1), hi.max(1)),
        }
    }

    /// Approximate mean sojourn in slots.
    ///
    /// Exact for geometric/deterministic/uniform; for the discretized
    /// continuous distributions this is the continuous mean + 0.5 (ceiling
    /// correction), accurate when the mean is ≳ a few slots.
    #[must_use]
    pub fn approx_mean(&self) -> f64 {
        match *self {
            Self::Geometric { p } => 1.0 / p,
            Self::Weibull { scale, shape } => scale * gamma_fn(1.0 + 1.0 / shape) + 0.5,
            Self::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp() + 0.5,
            Self::Deterministic { t } => t as f64,
            Self::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
        }
    }
}

/// Lanczos approximation of the Gamma function (g = 7, n = 9 coefficients),
/// accurate to ~1e-13 for positive arguments — used only for mean reporting.
#[must_use]
pub fn gamma_fn(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_des::rng::SeedPath;
    use vg_des::stats::OnlineStats;

    fn sample_mean(d: &SojournDist, n: u64, seed: u64) -> f64 {
        let mut rng = SeedPath::root(seed).rng();
        let mut s = OnlineStats::new();
        for _ in 0..n {
            s.push(d.sample(&mut rng) as f64);
        }
        s.mean()
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn all_samples_are_at_least_one() {
        let dists = [
            SojournDist::Geometric { p: 0.9 },
            SojournDist::Weibull {
                scale: 0.3,
                shape: 0.7,
            },
            SojournDist::LogNormal {
                mu: -1.0,
                sigma: 0.5,
            },
            SojournDist::Deterministic { t: 1 },
            SojournDist::Uniform { lo: 1, hi: 3 },
        ];
        let mut rng = SeedPath::root(1).rng();
        for d in &dists {
            for _ in 0..1000 {
                assert!(d.sample(&mut rng) >= 1, "{d:?}");
            }
        }
    }

    #[test]
    fn geometric_mean_matches() {
        let d = SojournDist::Geometric { p: 0.125 };
        let mean = sample_mean(&d, 200_000, 2);
        assert!((mean - 8.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_p1_is_always_one() {
        let d = SojournDist::Geometric { p: 1.0 };
        let mut rng = SeedPath::root(3).rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn geometric_is_memoryless() {
        // P(T > s+t | T > s) == P(T > t): compare empirical tail ratios.
        let d = SojournDist::Geometric { p: 0.2 };
        let mut rng = SeedPath::root(4).rng();
        let n = 200_000;
        let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let tail = |t: u64| samples.iter().filter(|&&x| x > t).count() as f64 / n as f64;
        let conditional = tail(5) / tail(2); // P(T>5 | T>2)
        let unconditional = tail(3);
        assert!(
            (conditional - unconditional).abs() < 0.01,
            "{conditional} vs {unconditional}"
        );
    }

    #[test]
    fn weibull_mean_matches_analytic() {
        let d = SojournDist::Weibull {
            scale: 20.0,
            shape: 1.5,
        };
        let mean = sample_mean(&d, 200_000, 5);
        assert!(
            (mean - d.approx_mean()).abs() < 0.3,
            "mean {mean} vs {}",
            d.approx_mean()
        );
    }

    #[test]
    fn weibull_shape1_is_exponential() {
        // Weibull(λ, 1) = Exponential(mean λ).
        let d = SojournDist::Weibull {
            scale: 10.0,
            shape: 1.0,
        };
        let mean = sample_mean(&d, 200_000, 6);
        assert!((mean - 10.5).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn lognormal_mean_matches_analytic() {
        let d = SojournDist::LogNormal {
            mu: 2.0,
            sigma: 0.5,
        };
        let mean = sample_mean(&d, 300_000, 7);
        assert!(
            (mean - d.approx_mean()).abs() < 0.3,
            "mean {mean} vs {}",
            d.approx_mean()
        );
    }

    #[test]
    fn deterministic_and_uniform() {
        let mut rng = SeedPath::root(8).rng();
        let d = SojournDist::Deterministic { t: 7 };
        assert_eq!(d.sample(&mut rng), 7);
        assert_eq!(d.approx_mean(), 7.0);

        let u = SojournDist::Uniform { lo: 2, hi: 4 };
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x = u.sample(&mut rng);
            assert!((2..=4).contains(&x));
            seen[x as usize] = true;
        }
        assert!(seen[2] && seen[3] && seen[4]);
        assert_eq!(u.approx_mean(), 3.0);
    }

    #[test]
    fn validate_catches_bad_parameters() {
        assert!(SojournDist::Geometric { p: 0.0 }.validate().is_err());
        assert!(SojournDist::Geometric { p: 1.5 }.validate().is_err());
        assert!(SojournDist::Weibull {
            scale: 0.0,
            shape: 1.0
        }
        .validate()
        .is_err());
        assert!(SojournDist::LogNormal {
            mu: 0.0,
            sigma: 0.0
        }
        .validate()
        .is_err());
        assert!(SojournDist::Deterministic { t: 0 }.validate().is_err());
        assert!(SojournDist::Uniform { lo: 3, hi: 2 }.validate().is_err());
        assert!(SojournDist::Uniform { lo: 0, hi: 2 }.validate().is_err());
        assert!(SojournDist::Geometric { p: 0.5 }.validate().is_ok());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SeedPath::root(9).rng();
        let mut s = OnlineStats::new();
        for _ in 0..200_000 {
            s.push(standard_normal(&mut rng));
        }
        assert!(s.mean().abs() < 0.01, "mean {}", s.mean());
        assert!((s.variance() - 1.0).abs() < 0.02, "var {}", s.variance());
    }

    #[test]
    fn weibull_small_shape_is_heavy_tailed() {
        // shape < 1: coefficient of variation > 1.
        let d = SojournDist::Weibull {
            scale: 10.0,
            shape: 0.5,
        };
        let mut rng = SeedPath::root(10).rng();
        let mut s = OnlineStats::new();
        for _ in 0..100_000 {
            s.push(d.sample(&mut rng) as f64);
        }
        let cv = s.std_dev() / s.mean();
        assert!(cv > 1.2, "cv {cv}");
    }
}
