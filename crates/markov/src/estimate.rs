//! Maximum-likelihood estimation of availability chains from traces.
//!
//! The heuristics of Section 6 assume the per-processor transition matrices
//! are known. In a deployment they must be estimated from observed state
//! traces (heartbeat history). This module provides the MLE (transition
//! counts, row-normalized) with optional Laplace smoothing for rows with few
//! observations — exactly what a production master would run over its
//! monitoring log before invoking the scheduler.

use crate::availability::{AvailabilityChain, ProcState};
use crate::chain::ChainError;

/// Transition counts accumulated from one or more traces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransitionCounts {
    counts: [[u64; 3]; 3],
}

impl TransitionCounts {
    /// Empty counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every consecutive pair of `trace` to the counts.
    pub fn observe_trace(&mut self, trace: &[ProcState]) {
        for w in trace.windows(2) {
            self.counts[w[0].index()][w[1].index()] += 1;
        }
    }

    /// Adds a single observed transition.
    pub fn observe(&mut self, from: ProcState, to: ProcState) {
        self.counts[from.index()][to.index()] += 1;
    }

    /// Merges counts from another counter (e.g. traces of the same machine
    /// collected on different days).
    pub fn merge(&mut self, other: &Self) {
        for i in 0..3 {
            for j in 0..3 {
                self.counts[i][j] += other.counts[i][j];
            }
        }
    }

    /// Raw counts.
    #[must_use]
    pub fn raw(&self) -> &[[u64; 3]; 3] {
        &self.counts
    }

    /// Total transitions observed out of `state`.
    #[must_use]
    pub fn row_total(&self, state: ProcState) -> u64 {
        self.counts[state.index()].iter().sum()
    }

    /// Maximum-likelihood estimate with additive (Laplace) smoothing
    /// `alpha ≥ 0` per cell. `alpha = 0` is the pure MLE and fails with
    /// [`ChainError::NotStochastic`] if some state was never observed
    /// (its row would be 0/0).
    pub fn estimate(&self, alpha: f64) -> Result<AvailabilityChain, ChainError> {
        assert!(alpha >= 0.0, "smoothing must be non-negative");
        let mut p = [[0.0; 3]; 3];
        for i in 0..3 {
            let total: f64 = self.counts[i].iter().sum::<u64>() as f64 + 3.0 * alpha;
            if total <= 0.0 {
                return Err(ChainError::NotStochastic { row: i });
            }
            for j in 0..3 {
                p[i][j] = (self.counts[i][j] as f64 + alpha) / total;
            }
        }
        AvailabilityChain::new(p)
    }
}

/// Convenience: estimate a chain from a single trace.
pub fn estimate_from_trace(
    trace: &[ProcState],
    alpha: f64,
) -> Result<AvailabilityChain, ChainError> {
    let mut c = TransitionCounts::new();
    c.observe_trace(trace);
    c.estimate(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::availability::AvailabilityStream;
    use vg_des::rng::SeedPath;

    fn chain() -> AvailabilityChain {
        AvailabilityChain::new([[0.92, 0.05, 0.03], [0.10, 0.85, 0.05], [0.04, 0.02, 0.94]])
            .unwrap()
    }

    #[test]
    fn counts_from_trace() {
        use ProcState::{Down as D, Reclaimed as R, Up as U};
        let mut c = TransitionCounts::new();
        c.observe_trace(&[U, U, R, U, D]);
        assert_eq!(c.raw()[U.index()][U.index()], 1);
        assert_eq!(c.raw()[U.index()][R.index()], 1);
        assert_eq!(c.raw()[R.index()][U.index()], 1);
        assert_eq!(c.raw()[U.index()][D.index()], 1);
        assert_eq!(c.row_total(U), 3);
        assert_eq!(c.row_total(D), 0);
    }

    #[test]
    fn short_traces_do_not_count() {
        let mut c = TransitionCounts::new();
        c.observe_trace(&[]);
        c.observe_trace(&[ProcState::Up]);
        assert_eq!(c, TransitionCounts::new());
    }

    #[test]
    fn mle_recovers_generating_chain() {
        let c = chain();
        let mut stream =
            AvailabilityStream::new(c.clone(), ProcState::Up, SeedPath::root(21).rng());
        let trace = stream.take_vec(500_000);
        let est = estimate_from_trace(&trace, 0.0).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (est.raw()[i][j] - c.raw()[i][j]).abs() < 0.01,
                    "P[{i}][{j}]: {} vs {}",
                    est.raw()[i][j],
                    c.raw()[i][j]
                );
            }
        }
    }

    #[test]
    fn pure_mle_fails_on_unseen_state() {
        use ProcState::Up as U;
        let mut c = TransitionCounts::new();
        c.observe_trace(&[U, U, U]);
        assert!(c.estimate(0.0).is_err()); // RECLAIMED and DOWN rows unseen
    }

    #[test]
    fn smoothing_fills_unseen_rows_uniformly() {
        use ProcState::Up as U;
        let mut c = TransitionCounts::new();
        c.observe_trace(&[U, U, U]);
        let est = c.estimate(1.0).unwrap();
        // Unseen rows become uniform.
        for j in 0..3 {
            assert!((est.raw()[1][j] - 1.0 / 3.0).abs() < 1e-12);
            assert!((est.raw()[2][j] - 1.0 / 3.0).abs() < 1e-12);
        }
        // Seen row is pulled toward uniform but dominated by data.
        assert!(est.raw()[0][0] > 0.5);
    }

    #[test]
    fn merge_equals_joint_observation() {
        use ProcState::{Reclaimed as R, Up as U};
        let mut a = TransitionCounts::new();
        a.observe_trace(&[U, R, U]);
        let mut b = TransitionCounts::new();
        b.observe_trace(&[R, R, U, U]);
        let mut merged = a.clone();
        merged.merge(&b);

        let mut joint = TransitionCounts::new();
        joint.observe_trace(&[U, R, U]);
        joint.observe_trace(&[R, R, U, U]);
        assert_eq!(merged, joint);
    }

    #[test]
    fn estimate_rows_are_stochastic() {
        let mut c = TransitionCounts::new();
        c.observe(ProcState::Up, ProcState::Down);
        c.observe(ProcState::Down, ProcState::Down);
        c.observe(ProcState::Reclaimed, ProcState::Up);
        let est = c.estimate(0.5).unwrap();
        for i in 0..3 {
            let sum: f64 = est.raw()[i].iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }
}
