//! # vg-markov — availability models for volatile processors
//!
//! Implements Section 5 of Casanova, Dufossé, Robert & Vivien, *"Scheduling
//! Parallel Iterative Applications on Volatile Resources"* (IPDPS 2011), plus
//! the generic machinery needed to verify it:
//!
//! * [`matrix`] — small dense linear algebra (products, powers, solves);
//! * [`chain`] — generic finite Markov chains: stationary distributions,
//!   hitting times, absorption probabilities, simulation;
//! * [`availability`] — the paper's 3-state (`UP`/`RECLAIMED`/`DOWN`)
//!   processor model with the closed forms of **Lemma 1** (`P₊`) and
//!   **Theorem 2** (`E(W)`), the `P_UD` probability of Section 6.3.3 (exact
//!   and the paper's approximation), and per-slot state streams;
//! * [`dist`] / [`semi_markov`] — non-memoryless sojourn distributions
//!   (Weibull, log-normal, …) and semi-Markov availability processes for the
//!   robustness study the paper proposes as future work;
//! * [`estimate`] — maximum-likelihood estimation of a chain from observed
//!   traces (what a real master would do with its heartbeat log);
//! * [`modulator`] — shared group-level `Normal ⇄ Outage` chains layered on
//!   the per-worker model to produce correlated failure bursts.
//!
//! ## Example: the expectation at the heart of EMCT/UD
//!
//! ```
//! use vg_markov::availability::AvailabilityChain;
//!
//! // A processor that stays UP 92% of slots, gets reclaimed 5%, crashes 3%.
//! let chain = AvailabilityChain::new([
//!     [0.92, 0.05, 0.03],
//!     [0.10, 0.85, 0.05],
//!     [0.04, 0.02, 0.94],
//! ]).unwrap();
//!
//! // Lemma 1: probability of being UP again before crashing.
//! let p_plus = chain.p_plus();
//! assert!(p_plus > 0.9 && p_plus < 1.0);
//!
//! // Theorem 2: expected slots to complete a 10-UP-slot workload,
//! // conditioned on not crashing. Always at least the workload itself.
//! let expected = chain.e_w(10);
//! assert!(expected >= 10.0);
//! ```

// Small fixed-dimension (3x3) matrix code indexes several arrays with one
// loop variable; iterator-zip rewrites obscure the math, so the pedantic
// range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod availability;
pub mod chain;
pub mod dist;
pub mod estimate;
pub mod matrix;
pub mod modulator;
pub mod semi_markov;

pub use availability::{
    AvailabilityChain, AvailabilityStream, ChainScoreMemo, ChainStats, ProcState, ScoreKernel,
};
pub use chain::{ChainError, MarkovChain};
pub use matrix::{MatrixError, SquareMatrix};
pub use modulator::{ModState, ModulatorError, OutageChain};
