//! The 3-state volatile-processor availability model of Section 5.
//!
//! A processor is `UP` (available), `RECLAIMED` (temporarily preempted by its
//! owner — work is suspended, not lost) or `DOWN` (crashed — program, data
//! and partial results are lost). State transitions form a Markov chain with
//! matrix `P(q)_{i,j}`, `i, j ∈ {u, r, d}`.
//!
//! This module implements, with the paper's notation:
//!
//! * `π_u, π_r, π_d` — the limit (stationary) distribution;
//! * `P₊` — **Lemma 1**: the probability that a processor currently `UP` is
//!   `UP` again at some later slot without entering `DOWN` in between;
//! * `E(up)` — expected slots until that next `UP` slot (conditioned on no
//!   `DOWN`), from the proof of Theorem 2;
//! * `E(W)` — **Theorem 2**: the conditional expectation of the number of
//!   slots a processor needs to be assigned a workload of `W` `UP`-slots,
//!   knowing it is `UP` now and will not go `DOWN` before finishing;
//! * `P_UD(k)` — Section 6.3.3: the probability of not entering `DOWN`
//!   during `k` slots starting from `UP`, both *exactly* (2×2 matrix power
//!   over the `{u, r}` block) and with the paper's closed-form approximation;
//! * numeric re-derivations of each quantity (truncated series / linear
//!   algebra) used by the test-suite to validate the closed forms.

use crate::chain::{ChainError, MarkovChain};
use crate::matrix::SquareMatrix;
use serde::{Deserialize, Serialize};
use vg_des::rng::StreamRng;

/// Survival-style power `base^exp` for probability bases and slot-count
/// exponents.
///
/// `f64::powi` takes an `i32`, so the previous `exp as i32` cast wrapped
/// for `exp > i32::MAX`: a probability raised to a *negative* (or garbage)
/// exponent blows up past 1 instead of underflowing toward 0. Slot counts
/// are `u64` (a capped run can legitimately ask about horizons beyond
/// `i32::MAX`), so exponents past the `powi` domain are routed through
/// `powf`, which accepts the full `u64` range: the `exp as f64` rounding
/// (at most 1 part in 2⁵³) is immaterial next to `powf`'s own error, and
/// the result remains a valid probability for bases in `[0, 1]` — note it
/// need *not* be near 0 (a base close enough to 1, e.g. `1 − 2⁻⁵³`, stays
/// well above 0 even at these exponents), so the fallback must stay a real
/// power, not a hard-coded underflow.
#[inline]
#[must_use]
fn pow_slots(base: f64, exp: u64) -> f64 {
    match i32::try_from(exp) {
        Ok(e) => base.powi(e),
        Err(_) => base.powf(exp as f64),
    }
}

/// Processor availability state (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProcState {
    /// `u` — available for computation.
    Up,
    /// `r` — temporarily reclaimed by its owner; activities are suspended and
    /// resume when the processor returns to `Up`.
    Reclaimed,
    /// `d` — crashed; the program, task data and partial results are lost.
    Down,
}

impl ProcState {
    /// All states, in matrix order `u, r, d`.
    pub const ALL: [ProcState; 3] = [ProcState::Up, ProcState::Reclaimed, ProcState::Down];

    /// Index in transition matrices (`u`=0, `r`=1, `d`=2).
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::Up => 0,
            Self::Reclaimed => 1,
            Self::Down => 2,
        }
    }

    /// Inverse of [`Self::index`].
    ///
    /// # Panics
    /// Panics if `i > 2`.
    #[inline]
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        match i {
            0 => Self::Up,
            1 => Self::Reclaimed,
            2 => Self::Down,
            _ => panic!("invalid state index {i}"),
        }
    }

    /// Single-character code used in traces (`u`, `r`, `d` — the paper's
    /// notation in Section 3.2).
    #[must_use]
    pub fn code(self) -> char {
        match self {
            Self::Up => 'u',
            Self::Reclaimed => 'r',
            Self::Down => 'd',
        }
    }

    /// Parses a trace code.
    #[must_use]
    pub fn from_code(c: char) -> Option<Self> {
        match c {
            'u' => Some(Self::Up),
            'r' => Some(Self::Reclaimed),
            'd' => Some(Self::Down),
            _ => None,
        }
    }

    /// True when the processor can compute/communicate this slot.
    #[inline]
    #[must_use]
    pub fn is_up(self) -> bool {
        matches!(self, Self::Up)
    }
}

impl std::fmt::Display for ProcState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// The 3-state availability Markov chain of one processor.
///
/// Stored as `p[i][j] = Pr(state j at t+1 | state i at t)` with the index
/// order `u, r, d`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityChain {
    p: [[f64; 3]; 3],
}

/// Validation tolerance on row sums.
const ROW_TOL: f64 = 1e-9;

impl AvailabilityChain {
    /// Builds a chain from a 3×3 row-stochastic matrix (order `u, r, d`).
    pub fn new(p: [[f64; 3]; 3]) -> Result<Self, ChainError> {
        for (i, row) in p.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > ROW_TOL
                || row
                    .iter()
                    .any(|&x| !(0.0..=1.0 + ROW_TOL).contains(&x) || x.is_nan())
            {
                return Err(ChainError::NotStochastic { row: i });
            }
        }
        Ok(Self { p })
    }

    /// The experimental-scenario sampler of Section 7: each self-loop
    /// probability `P_{x,x}` is drawn uniformly from `[lo, hi]`
    /// (the paper uses `[0.90, 0.99]`) and the two exit probabilities split
    /// the remainder evenly: `P_{x,y} = (1 − P_{x,x}) / 2` for `y ≠ x`.
    #[must_use]
    pub fn sample_paper(rng: &mut StreamRng, lo: f64, hi: f64) -> Self {
        let mut p = [[0.0; 3]; 3];
        for (i, row) in p.iter_mut().enumerate() {
            let diag = rng.f64_range(lo, hi);
            for (j, x) in row.iter_mut().enumerate() {
                *x = if i == j { diag } else { 0.5 * (1.0 - diag) };
            }
        }
        Self { p }
    }

    /// Transition probability between two states.
    #[inline]
    #[must_use]
    pub fn prob(&self, from: ProcState, to: ProcState) -> f64 {
        self.p[from.index()][to.index()]
    }

    /// `P_{u,u}`.
    #[inline]
    #[must_use]
    pub fn p_uu(&self) -> f64 {
        self.p[0][0]
    }

    /// `P_{u,r}`.
    #[inline]
    #[must_use]
    pub fn p_ur(&self) -> f64 {
        self.p[0][1]
    }

    /// `P_{u,d}`.
    #[inline]
    #[must_use]
    pub fn p_ud(&self) -> f64 {
        self.p[0][2]
    }

    /// `P_{r,u}`.
    #[inline]
    #[must_use]
    pub fn p_ru(&self) -> f64 {
        self.p[1][0]
    }

    /// `P_{r,r}`.
    #[inline]
    #[must_use]
    pub fn p_rr(&self) -> f64 {
        self.p[1][1]
    }

    /// `P_{r,d}`.
    #[inline]
    #[must_use]
    pub fn p_rd(&self) -> f64 {
        self.p[1][2]
    }

    /// The raw matrix.
    #[must_use]
    pub fn raw(&self) -> &[[f64; 3]; 3] {
        &self.p
    }

    /// Converts to the generic [`MarkovChain`].
    #[must_use]
    pub fn to_chain(&self) -> MarkovChain {
        // tidy:allow(hot_alloc): one-off conversion helper, not on the sampling path.
        let rows: Vec<Vec<f64>> = self.p.iter().map(|r| r.to_vec()).collect();
        MarkovChain::new(SquareMatrix::from_rows(&rows)).expect("validated at construction")
    }

    /// Stationary distribution `(π_u, π_r, π_d)`.
    ///
    /// Falls back to power iteration if the direct solve fails (e.g. a
    /// borderline-reducible chain crafted in tests).
    #[must_use]
    pub fn stationary(&self) -> [f64; 3] {
        let chain = self.to_chain();
        let pi = chain
            .stationary()
            .unwrap_or_else(|_| chain.stationary_power(1e-13, 1_000_000));
        [pi[0], pi[1], pi[2]]
    }

    /// **Lemma 1.** `P₊ = P_{u,u} + P_{u,r} P_{r,u} / (1 − P_{r,r})`:
    /// the probability that a processor `UP` now will be `UP` again at some
    /// later slot without entering `DOWN` in between.
    ///
    /// When `P_{r,r} = 1` the reclaimed state is absorbing and the excursion
    /// never returns, so the second term is 0.
    #[must_use]
    pub fn p_plus(&self) -> f64 {
        let denom = 1.0 - self.p_rr();
        if denom <= 0.0 {
            self.p_uu()
        } else {
            self.p_uu() + self.p_ur() * self.p_ru() / denom
        }
    }

    /// `E(up)` from the proof of Theorem 2: the expected number of slots
    /// until the *next* `UP` slot, knowing the processor is `UP` now and does
    /// not enter `DOWN` in between.
    ///
    /// `E(up) = 1 + z / ((1 − P_{r,r})(1 + z))` with
    /// `z = P_{u,r} P_{r,u} / (P_{u,u} (1 − P_{r,r}))`.
    #[must_use]
    pub fn e_up(&self) -> f64 {
        let one_minus_rr = 1.0 - self.p_rr();
        if one_minus_rr <= 0.0 {
            // Reclaimed is absorbing: conditioned on returning (never), the
            // expectation is vacuous; staying UP is the only way, cost 1.
            return 1.0;
        }
        if self.p_uu() <= 0.0 {
            // Every continuation goes through RECLAIMED; z → ∞ and the limit
            // of the closed form is 1 + 1/(1 − P_rr).
            return 1.0 + 1.0 / one_minus_rr;
        }
        let z = self.p_ur() * self.p_ru() / (self.p_uu() * one_minus_rr);
        1.0 + z / (one_minus_rr * (1.0 + z))
    }

    /// **Theorem 2.** `E(W)`: expected number of slots for a processor to
    /// complete a workload needing `W` `UP`-slots, knowing it is `UP` at the
    /// current slot (which counts toward `W`) and never enters `DOWN` before
    /// finishing.
    ///
    /// `E(W) = W + (W−1) · P_{u,r} P_{r,u} / (1 − P_{r,r}) ·
    ///         1 / (P_{u,u}(1 − P_{r,r}) + P_{u,r} P_{r,u})`.
    ///
    /// Defined for `W ≥ 1`; `E(0)` is 0 (nothing to do).
    #[must_use]
    pub fn e_w(&self, w: u64) -> f64 {
        if w == 0 {
            return 0.0;
        }
        let w = w as f64;
        let one_minus_rr = 1.0 - self.p_rr();
        if one_minus_rr <= 0.0 {
            return w;
        }
        let num = self.p_ur() * self.p_ru();
        let denom = self.p_uu() * one_minus_rr + num;
        if denom <= 0.0 {
            // No way to accumulate UP slots without DOWN; conditional
            // expectation is vacuous — return the unreachable lower bound.
            return w;
        }
        w + (w - 1.0) * (num / one_minus_rr) * (1.0 / denom)
    }

    /// Probability that a processor `UP` now completes a `W`-slot workload
    /// before entering `DOWN`: `(P₊)^{W−1}` (it needs `W−1` further returns
    /// to `UP`).
    #[must_use]
    pub fn success_prob(&self, w: u64) -> f64 {
        if w <= 1 {
            return 1.0;
        }
        pow_slots(self.p_plus(), w - 1)
    }

    /// Exact `P_UD(k)`: probability of spending `k` consecutive slots without
    /// entering `DOWN`, starting `UP` (the first slot is the current one, so
    /// `k − 1` transitions must stay within `{u, r}`).
    ///
    /// Computed as `Σ_j (M^{k−1})[u][j]` over the `{u, r}` sub-matrix `M`.
    #[must_use]
    pub fn p_ud_exact(&self, k: u64) -> f64 {
        if k <= 1 {
            return 1.0;
        }
        let m = SquareMatrix::from_rows(&[
            // tidy:allow(hot_alloc): exact-analysis path (Section 6.3.3 study), not simulation-hot.
            vec![self.p_uu(), self.p_ur()],
            // tidy:allow(hot_alloc): exact-analysis path (Section 6.3.3 study), not simulation-hot.
            vec![self.p_ru(), self.p_rr()],
        ]);
        let mk = m.pow(k - 1);
        mk[(0, 0)] + mk[(0, 1)]
    }

    /// The paper's closed-form approximation of `P_UD(k)` (Section 6.3.3),
    /// which forgets the exact state after the first transition:
    ///
    /// `P_UD(k) ≈ (1 − P_{u,d}) ·
    ///            (1 − (P_{u,d} π_u + P_{r,d} π_r)/(π_u + π_r))^{k−2}`.
    ///
    /// For `k ≤ 1` this returns 1; for `k = 2` the exponent is zero and the
    /// value is exactly `1 − P_{u,d}` (which is also the exact value).
    #[must_use]
    pub fn p_ud_approx(&self, k: u64) -> f64 {
        if k <= 1 {
            return 1.0;
        }
        let [pi_u, pi_r, _] = self.stationary();
        let first = 1.0 - self.p_ud();
        let live = pi_u + pi_r;
        if live <= 0.0 {
            return if k == 2 { first } else { 0.0 };
        }
        let per_slot = 1.0 - (self.p_ud() * pi_u + self.p_rd() * pi_r) / live;
        first * pow_slots(per_slot, k - 2)
    }

    // ------------------------------------------------------------------
    // Numeric re-derivations (used to validate the closed forms in tests,
    // and exposed for downstream users who want independent confirmation).
    // ------------------------------------------------------------------

    /// `P₊` from the defining series
    /// `P_{u,u} + P_{u,r} (Σ_t P_{r,r}^t) P_{r,u}`, truncated at machine
    /// precision.
    #[must_use]
    pub fn p_plus_numeric(&self) -> f64 {
        let mut total = self.p_uu();
        let mut geom = self.p_ur() * self.p_ru();
        let mut t = 0;
        while geom > 1e-18 && t < 1_000_000 {
            total += geom;
            geom *= self.p_rr();
            t += 1;
        }
        total
    }

    /// `E(up)` from the defining series in the proof of Theorem 2:
    /// `E(up) = (P_{u,u} + Σ_{t≥0} (t+2) P_{u,r} P_{r,r}^t P_{r,u}) / P₊`.
    #[must_use]
    pub fn e_up_numeric(&self) -> f64 {
        let mut num = self.p_uu();
        let mut geom = self.p_ur() * self.p_ru();
        let mut t: u64 = 0;
        while geom > 1e-18 && t < 1_000_000 {
            num += (t as f64 + 2.0) * geom;
            geom *= self.p_rr();
            t += 1;
        }
        num / self.p_plus_numeric()
    }

    /// `E(W)` via `1 + (W−1) · E(up)` with the numeric `E(up)` — the
    /// linearity identity at the end of the Theorem 2 proof.
    #[must_use]
    pub fn e_w_numeric(&self, w: u64) -> f64 {
        if w == 0 {
            return 0.0;
        }
        1.0 + (w as f64 - 1.0) * self.e_up_numeric()
    }

    /// Monte-Carlo estimate of `E(W)` by rejection sampling: simulate the
    /// chain from `UP`, discard trajectories that hit `DOWN` before
    /// completing `W` UP-slots, average the completion time of survivors.
    ///
    /// Returns `(estimate, accepted_samples)`. Intended for tests; slow.
    #[must_use]
    pub fn e_w_monte_carlo(&self, w: u64, samples: u64, rng: &mut StreamRng) -> (f64, u64) {
        assert!(w >= 1);
        let mut total = 0.0;
        let mut accepted = 0u64;
        'sample: for _ in 0..samples {
            let mut up_slots = 1u64; // currently UP
            let mut t = 1u64;
            let mut state = ProcState::Up;
            while up_slots < w {
                state = self.sample_next(state, rng);
                t += 1;
                match state {
                    ProcState::Up => up_slots += 1,
                    ProcState::Reclaimed => {}
                    ProcState::Down => continue 'sample,
                }
            }
            total += t as f64;
            accepted += 1;
        }
        if accepted == 0 {
            (f64::NAN, 0)
        } else {
            (total / accepted as f64, accepted)
        }
    }

    /// Samples the next state.
    #[must_use]
    pub fn sample_next(&self, from: ProcState, rng: &mut StreamRng) -> ProcState {
        let row = &self.p[from.index()];
        let mut u = rng.f64();
        for (j, &p) in row.iter().enumerate() {
            if u < p {
                return ProcState::from_index(j);
            }
            u -= p;
        }
        // Round-off slack.
        ProcState::from_index(row.iter().rposition(|&p| p > 0.0).unwrap_or(0))
    }
}

/// Precomputed scheduling statistics of one availability chain.
///
/// The heuristics of Section 6 evaluate `P₊`, `E(W)` and `P_UD` thousands of
/// times per simulated slot; `ChainStats` hoists every derived quantity that
/// does not depend on the workload size — the stationary distribution (a
/// linear solve), `P₊`, `E(up)`, and the two factors of the `P_UD`
/// approximation — so per-candidate scoring is a handful of flops.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStats {
    chain: AvailabilityChain,
    pi: [f64; 3],
    kernel: ScoreKernel,
}

/// The four cached scalars that every per-placement score evaluation
/// actually reads, packed into 32 dense bytes.
///
/// [`ChainStats`] is ~140 bytes (the chain matrix, the stationary
/// distribution, these factors); a scheduler scoring a thousand candidates
/// per slot through `&[ChainStats]` pulls a whole scattered cache line per
/// processor to use one or two of these numbers. Schedulers instead copy
/// each processor's `ScoreKernel` into a dense per-run array once and
/// evaluate against that — 4× less memory traffic on the hottest loop of
/// the schedule phase. The evaluation methods here are the *single source
/// of truth* for the Theorem-2 / Section-6.3.3 closed forms:
/// [`ChainStats::e_w`] and [`ChainStats::p_ud_approx`] delegate to them,
/// so a kernel evaluation is bit-identical to one through `ChainStats` by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreKernel {
    /// Cached `P₊` (Lemma 1).
    pub p_plus: f64,
    /// Cached `E(up)` (Theorem 2 proof).
    pub e_up: f64,
    /// First factor of the `P_UD` approximation: `1 − P_{u,d}`.
    pub ud_first: f64,
    /// Per-slot survival factor of the `P_UD` approximation.
    pub ud_per_slot: f64,
}

impl ScoreKernel {
    /// `E(W)` via the cached `E(up)`: `1 + (W−1)·E(up)` (Theorem 2).
    #[inline]
    #[must_use]
    pub fn e_w(&self, w: u64) -> f64 {
        if w == 0 {
            return 0.0;
        }
        1.0 + (w as f64 - 1.0) * self.e_up
    }

    /// The paper's `P_UD(k)` approximation using the cached factors.
    #[inline]
    #[must_use]
    pub fn p_ud_approx(&self, k: u64) -> f64 {
        if k <= 1 {
            return 1.0;
        }
        self.ud_first * pow_slots(self.ud_per_slot, k - 2)
    }
}

impl ChainStats {
    /// Precomputes all derived quantities of `chain`.
    #[must_use]
    pub fn new(chain: AvailabilityChain) -> Self {
        let pi = chain.stationary();
        let p_plus = chain.p_plus();
        let e_up = chain.e_up();
        let ud_first = 1.0 - chain.p_ud();
        let live = pi[0] + pi[1];
        let ud_per_slot = if live > 0.0 {
            1.0 - (chain.p_ud() * pi[0] + chain.p_rd() * pi[1]) / live
        } else {
            0.0
        };
        Self {
            chain,
            pi,
            kernel: ScoreKernel {
                p_plus,
                e_up,
                ud_first,
                ud_per_slot,
            },
        }
    }

    /// The underlying chain.
    #[must_use]
    pub fn chain(&self) -> &AvailabilityChain {
        &self.chain
    }

    /// The dense per-placement evaluation kernel (copy it into a per-run
    /// array for hot loops — see [`ScoreKernel`]).
    #[inline]
    #[must_use]
    pub fn kernel(&self) -> ScoreKernel {
        self.kernel
    }

    /// `P_{u,u}` (Random1's weight).
    #[inline]
    #[must_use]
    pub fn p_uu(&self) -> f64 {
        self.chain.p_uu()
    }

    /// Cached stationary distribution `(π_u, π_r, π_d)`.
    #[inline]
    #[must_use]
    pub fn pi(&self) -> [f64; 3] {
        self.pi
    }

    /// Cached `P₊` (Lemma 1).
    #[inline]
    #[must_use]
    pub fn p_plus(&self) -> f64 {
        self.kernel.p_plus
    }

    /// Cached `E(up)`.
    #[inline]
    #[must_use]
    pub fn e_up(&self) -> f64 {
        self.kernel.e_up
    }

    /// `E(W)` via the cached `E(up)`: `1 + (W−1)·E(up)` (Theorem 2).
    #[inline]
    #[must_use]
    pub fn e_w(&self, w: u64) -> f64 {
        self.kernel.e_w(w)
    }

    /// The paper's `P_UD(k)` approximation using the cached factors.
    #[inline]
    #[must_use]
    pub fn p_ud_approx(&self, k: u64) -> f64 {
        self.kernel.p_ud_approx(k)
    }
}

/// One slot of the schedule phase's **Eq.-(2)/Theorem-2 score cache**.
///
/// The greedy heuristics of Section 6.3 evaluate, thousands of times per
/// simulated slot, a placement score that is a pure function of a
/// processor's chain statistics and speed (run constants) and three
/// integers: the processor's snapshot `delay`, the number of tasks already
/// assigned to it in the current round (`n_q`), and the Equation-(2)
/// ceiling factor `⌈n_active/ncom⌉` baked into the effective `T_data`.
/// Callers keep one `ChainScoreMemo` per *(processor, ceiling factor)* and
/// key each slot by `(delay, n_q)`: a hit replays the cached evaluation
/// bit-for-bit (the closed forms of Theorem 2 / Section 6.3.3 are pure), a
/// miss recomputes and overwrites. Entries are invalidated naturally —
/// the key changes or a different factor's slot is consulted — exactly
/// when the ceiling steps or the processor's pipeline delay moves, so no
/// explicit flush is needed within a run. Callers must still drop the
/// whole table between runs (chain statistics and speeds change).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainScoreMemo {
    /// Snapshot delay the cached score was computed at.
    delay: u64,
    /// `n_q` (tasks already on the processor) it was computed at.
    n_q: u64,
    /// The cached evaluation.
    score: f64,
}

impl ChainScoreMemo {
    /// An empty slot; never hits (no real snapshot carries this key).
    pub const EMPTY: Self = Self {
        delay: u64::MAX,
        n_q: u64::MAX,
        score: 0.0,
    };

    /// The cached score for `(delay, n_q)`, or the result of `eval`
    /// (stored for next time) on a key mismatch. `eval` must be the same
    /// pure function on every call for a given processor and factor.
    #[inline]
    pub fn get_or_eval(&mut self, delay: u64, n_q: u64, eval: impl FnOnce() -> f64) -> f64 {
        if self.delay != delay || self.n_q != n_q {
            self.score = eval();
            self.delay = delay;
            self.n_q = n_q;
        }
        self.score
    }
}

impl Default for ChainScoreMemo {
    fn default() -> Self {
        Self::EMPTY
    }
}

/// An endless, deterministic availability state stream for one processor.
///
/// The simulator advances every processor once per slot; two streams created
/// with equal `(chain, start, rng)` produce identical sequences, which is how
/// the experiment harness presents identical availability to every heuristic
/// (common random numbers).
#[derive(Debug, Clone)]
pub struct AvailabilityStream {
    chain: AvailabilityChain,
    state: ProcState,
    rng: StreamRng,
    /// Slots emitted so far.
    emitted: u64,
}

impl AvailabilityStream {
    /// Creates a stream that will emit `start` as its first state.
    #[must_use]
    pub fn new(chain: AvailabilityChain, start: ProcState, rng: StreamRng) -> Self {
        Self {
            chain,
            state: start,
            rng,
            emitted: 0,
        }
    }

    /// Creates a stream whose first state is drawn from the stationary
    /// distribution (a processor observed "at random" in the field).
    #[must_use]
    pub fn stationary_start(chain: AvailabilityChain, mut rng: StreamRng) -> Self {
        let pi = chain.stationary();
        let idx = rng.weighted_index(&pi).unwrap_or(0);
        Self::new(chain, ProcState::from_index(idx), rng)
    }

    /// The chain driving this stream.
    #[must_use]
    pub fn chain(&self) -> &AvailabilityChain {
        &self.chain
    }

    /// Number of states emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Emits the state for the next slot.
    pub fn next_state(&mut self) -> ProcState {
        let out = self.state;
        self.state = self.chain.sample_next(self.state, &mut self.rng);
        self.emitted += 1;
        out
    }

    /// Emits `len` states into a vector.
    pub fn take_vec(&mut self, len: usize) -> Vec<ProcState> {
        // tidy:allow(hot_alloc): the whole point of this API is to materialize a trace.
        (0..len).map(|_| self.next_state()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_des::rng::SeedPath;

    /// A hand-picked, asymmetric chain exercised throughout the tests.
    fn chain() -> AvailabilityChain {
        AvailabilityChain::new([[0.92, 0.05, 0.03], [0.10, 0.85, 0.05], [0.04, 0.02, 0.94]])
            .unwrap()
    }

    /// A paper-style chain (diagonals in [0.90, 0.99], symmetric split).
    fn paper_chain() -> AvailabilityChain {
        let mut rng = SeedPath::root(2024).rng();
        AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99)
    }

    #[test]
    fn state_index_roundtrip() {
        for s in ProcState::ALL {
            assert_eq!(ProcState::from_index(s.index()), s);
            assert_eq!(ProcState::from_code(s.code()), Some(s));
        }
        assert_eq!(ProcState::from_code('x'), None);
    }

    #[test]
    fn rejects_bad_rows() {
        assert!(
            AvailabilityChain::new([[0.5, 0.4, 0.0], [0.1, 0.8, 0.1], [0.1, 0.1, 0.8],]).is_err()
        );
    }

    #[test]
    fn sample_paper_is_well_formed() {
        let mut rng = SeedPath::root(5).rng();
        for _ in 0..100 {
            let c = AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99);
            for i in 0..3 {
                let diag = c.raw()[i][i];
                assert!((0.90..=0.99).contains(&diag));
                let sum: f64 = c.raw()[i].iter().sum();
                assert!((sum - 1.0).abs() < 1e-12);
                for j in 0..3 {
                    if i != j {
                        assert!((c.raw()[i][j] - 0.5 * (1.0 - diag)).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn stationary_sums_to_one_and_is_fixed() {
        let c = chain();
        let pi = c.stationary();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        let stepped = c.to_chain().step_distribution(&pi);
        for (a, b) in pi.iter().zip(&stepped) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn lemma1_p_plus_matches_series() {
        for c in [chain(), paper_chain()] {
            let closed = c.p_plus();
            let series = c.p_plus_numeric();
            assert!(
                (closed - series).abs() < 1e-12,
                "closed {closed} vs series {series}"
            );
        }
    }

    #[test]
    fn lemma1_p_plus_matches_absorption_probability() {
        // Independent derivation: P₊ is the probability, starting one
        // transition after an UP slot, of reaching UP before DOWN — i.e. a
        // first-step decomposition over the generic chain's absorption
        // analysis on a chain where UP and DOWN are made absorbing.
        let c = chain();
        let absorbed = MarkovChain::from_rows(&[
            vec![1.0, 0.0, 0.0], // UP absorbing
            vec![c.p_ru(), c.p_rr(), c.p_rd()],
            vec![0.0, 0.0, 1.0], // DOWN absorbing
        ])
        .unwrap();
        let reach_up = absorbed.absorption_probability(&[0], &[2]).unwrap();
        let expected = c.p_uu() + c.p_ur() * reach_up[1] + c.p_ud() * 0.0;
        assert!((c.p_plus() - expected).abs() < 1e-12);
    }

    #[test]
    fn theorem2_e_up_matches_series() {
        for c in [chain(), paper_chain()] {
            let closed = c.e_up();
            let series = c.e_up_numeric();
            assert!(
                (closed - series).abs() < 1e-9,
                "closed {closed} vs series {series}"
            );
        }
    }

    #[test]
    fn theorem2_e_w_matches_series() {
        for c in [chain(), paper_chain()] {
            for w in [1u64, 2, 3, 10, 100, 1000] {
                let closed = c.e_w(w);
                let series = c.e_w_numeric(w);
                assert!(
                    (closed - series).abs() < 1e-6 * series.max(1.0),
                    "W={w}: closed {closed} vs series {series}"
                );
            }
        }
    }

    #[test]
    fn theorem2_linearity_identity() {
        // E(W) = 1 + (W−1) E(up), the final remark of the proof.
        let c = chain();
        for w in [1u64, 2, 5, 50] {
            let direct = c.e_w(w);
            let via_eup = 1.0 + (w as f64 - 1.0) * c.e_up();
            assert!((direct - via_eup).abs() < 1e-9, "W={w}");
        }
    }

    #[test]
    fn e_w_monte_carlo_agrees() {
        let c = chain();
        let mut rng = SeedPath::root(99).rng();
        let w = 8;
        let (estimate, accepted) = c.e_w_monte_carlo(w, 200_000, &mut rng);
        assert!(accepted > 10_000, "too few accepted samples: {accepted}");
        let closed = c.e_w(w);
        let rel = (estimate - closed).abs() / closed;
        assert!(rel < 0.02, "MC {estimate} vs closed {closed} (rel {rel})");
    }

    #[test]
    fn e_w_edge_cases() {
        let c = chain();
        assert_eq!(c.e_w(0), 0.0);
        assert_eq!(c.e_w(1), 1.0); // already UP, one slot of work
        assert!(c.e_w(2) >= 2.0);
    }

    #[test]
    fn e_w_is_monotone_and_superlinear() {
        let c = chain();
        let mut prev = c.e_w(1);
        for w in 2..200 {
            let cur = c.e_w(w);
            assert!(cur > prev, "E({w}) must grow");
            assert!(cur >= w as f64, "E(W) ≥ W");
            prev = cur;
        }
    }

    #[test]
    fn success_prob_is_p_plus_power() {
        let c = chain();
        assert_eq!(c.success_prob(0), 1.0);
        assert_eq!(c.success_prob(1), 1.0);
        assert!((c.success_prob(2) - c.p_plus()).abs() < 1e-15);
        assert!((c.success_prob(5) - c.p_plus().powi(4)).abs() < 1e-15);
    }

    #[test]
    fn p_ud_exact_small_k_by_hand() {
        let c = chain();
        assert_eq!(c.p_ud_exact(1), 1.0);
        // k=2: one transition, must not be to DOWN.
        assert!((c.p_ud_exact(2) - (1.0 - c.p_ud())).abs() < 1e-15);
        // k=3: enumerate u->{u,r}->{u,r} paths.
        let by_hand = c.p_uu() * (c.p_uu() + c.p_ur()) + c.p_ur() * (c.p_ru() + c.p_rr());
        assert!((c.p_ud_exact(3) - by_hand).abs() < 1e-12);
    }

    #[test]
    fn p_ud_approx_matches_exact_at_k2_and_tracks_after() {
        // The paper's approximation "forgets the state after the first
        // transition", so it degrades as k grows and as failure rates rise;
        // it must be exact at k = 2 and stay coarse-but-useful after.
        for c in [chain(), paper_chain()] {
            assert!((c.p_ud_approx(2) - c.p_ud_exact(2)).abs() < 1e-12);
            for k in [3u64, 5, 10, 20] {
                let exact = c.p_ud_exact(k);
                let approx = c.p_ud_approx(k);
                assert!(
                    (exact - approx).abs() < 0.10,
                    "k={k}: exact {exact} approx {approx}"
                );
            }
        }
        // On paper-style (gentle) chains it is tight for small k and always
        // an over-estimate (the mixture of π_u/π_r exit rates under-weights
        // the risky immediate-UP slots for these matrices).
        let c = paper_chain();
        for k in [3u64, 5] {
            assert!((c.p_ud_exact(k) - c.p_ud_approx(k)).abs() < 0.03, "k={k}");
        }
    }

    #[test]
    fn p_ud_approx_survives_exponents_past_i32_max() {
        // Regression: `powi((k - 2) as i32)` wrapped for k − 2 > i32::MAX,
        // turning the per-slot survival factor into a *negative*-exponent
        // power — a "probability" far above 1. Large k must instead
        // underflow toward 0 (the chain has a nonzero per-slot death rate).
        let c = chain();
        let stats = ChainStats::new(c.clone());
        let last_powi = 2 + i32::MAX as u64; // exponent exactly i32::MAX
        let first_powf = last_powi + 1; // exponent i32::MAX + 1: wrapped before
        for k in [last_powi, first_powf, u64::MAX] {
            for v in [c.p_ud_approx(k), stats.p_ud_approx(k)] {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "P_UD({k}) = {v} is not a probability"
                );
                assert!(v <= c.p_ud_approx(3), "P_UD({k}) = {v} not decreasing");
            }
            assert_eq!(c.p_ud_approx(k), stats.p_ud_approx(k), "k={k}");
        }
        // This chain's survival factor is < 1, so the tail is exactly 0.
        assert_eq!(c.p_ud_approx(first_powf), 0.0);
    }

    #[test]
    fn success_prob_survives_exponents_past_i32_max() {
        // Same wrap through `(w − 1) as i32`.
        let c = chain();
        for w in [1 + i32::MAX as u64, 2 + i32::MAX as u64, u64::MAX] {
            let v = c.success_prob(w);
            assert!(
                (0.0..=1.0).contains(&v),
                "success_prob({w}) = {v} is not a probability"
            );
            assert!(v <= c.success_prob(2) + 1e-15, "not decreasing at {w}");
        }
    }

    #[test]
    fn chain_score_memo_replays_and_invalidates() {
        let mut memo = ChainScoreMemo::default();
        let mut evals = 0u32;
        let eval = |d: u64, n: u64| (d * 10 + n) as f64;
        // First consult computes; an identical key replays without eval.
        let a = memo.get_or_eval(3, 1, || {
            evals += 1;
            eval(3, 1)
        });
        let b = memo.get_or_eval(3, 1, || {
            evals += 1;
            eval(3, 1)
        });
        assert_eq!(a, b);
        assert_eq!(evals, 1);
        // Either key component moving invalidates.
        let c = memo.get_or_eval(4, 1, || {
            evals += 1;
            eval(4, 1)
        });
        assert_eq!(c, 41.0);
        let d = memo.get_or_eval(4, 2, || {
            evals += 1;
            eval(4, 2)
        });
        assert_eq!(d, 42.0);
        assert_eq!(evals, 3);
        assert_eq!(ChainScoreMemo::default(), ChainScoreMemo::EMPTY);
    }

    #[test]
    fn p_ud_exact_is_decreasing_in_k() {
        let c = chain();
        let mut prev = c.p_ud_exact(1);
        for k in 2..50 {
            let cur = c.p_ud_exact(k);
            assert!(cur <= prev + 1e-15, "k={k}");
            prev = cur;
        }
    }

    #[test]
    fn p_plus_bounds() {
        for seed in 0..50 {
            let mut rng = SeedPath::root(seed).rng();
            let c = AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99);
            let p = c.p_plus();
            assert!(p > 0.0 && p <= 1.0, "P+ out of range: {p}");
            // P+ at least P_uu, at most 1 − P_ud·0 (trivial) — tighter:
            // P+ ≤ 1 − P_ud because going DOWN immediately rules it out.
            assert!(p >= c.p_uu() - 1e-15);
            assert!(p <= 1.0 - c.p_ud() + 1e-15);
        }
    }

    #[test]
    fn stream_determinism_and_start() {
        let c = chain();
        let mk = || AvailabilityStream::new(c.clone(), ProcState::Up, SeedPath::root(42).rng());
        let mut a = mk();
        let mut b = mk();
        let va = a.take_vec(500);
        let vb = b.take_vec(500);
        assert_eq!(va, vb);
        assert_eq!(va[0], ProcState::Up);
        assert_eq!(a.emitted(), 500);
    }

    #[test]
    fn stream_stationary_start_frequencies() {
        let c = chain();
        let pi = c.stationary();
        let mut counts = [0u64; 3];
        for seed in 0..20_000 {
            let mut s = AvailabilityStream::stationary_start(
                c.clone(),
                SeedPath::root(7).child(seed).rng(),
            );
            counts[s.next_state().index()] += 1;
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / 20_000.0;
            assert!(
                (freq - pi[i]).abs() < 0.02,
                "state {i}: {freq} vs {}",
                pi[i]
            );
        }
    }

    #[test]
    fn stream_long_run_occupancy_matches_stationary() {
        let c = paper_chain();
        let pi = c.stationary();
        let mut s = AvailabilityStream::new(c, ProcState::Up, SeedPath::root(3).rng());
        let n = 300_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            counts[s.next_state().index()] += 1;
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / n as f64;
            assert!(
                (freq - pi[i]).abs() < 0.02,
                "state {i}: {freq} vs {}",
                pi[i]
            );
        }
    }

    #[test]
    fn chain_stats_match_direct_computation() {
        for c in [chain(), paper_chain()] {
            let stats = ChainStats::new(c.clone());
            assert_eq!(stats.p_uu(), c.p_uu());
            assert!((stats.p_plus() - c.p_plus()).abs() < 1e-15);
            assert!((stats.e_up() - c.e_up()).abs() < 1e-15);
            for i in 0..3 {
                assert!((stats.pi()[i] - c.stationary()[i]).abs() < 1e-12);
            }
            for w in [0u64, 1, 2, 7, 100] {
                assert!(
                    (stats.e_w(w) - c.e_w(w)).abs() < 1e-9 * c.e_w(w).max(1.0),
                    "W={w}"
                );
            }
            for k in [1u64, 2, 3, 10, 50] {
                assert!(
                    (stats.p_ud_approx(k) - c.p_ud_approx(k)).abs() < 1e-12,
                    "k={k}"
                );
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random row-stochastic 3×3 matrices with every exit possible
        /// (keeps chains irreducible almost surely).
        fn arb_chain() -> impl Strategy<Value = AvailabilityChain> {
            proptest::collection::vec(0.02f64..1.0, 9).prop_map(|raw| {
                let mut p = [[0.0; 3]; 3];
                for i in 0..3 {
                    let total: f64 = raw[3 * i..3 * i + 3].iter().sum();
                    for j in 0..3 {
                        p[i][j] = raw[3 * i + j] / total;
                    }
                }
                AvailabilityChain::new(p).expect("normalized rows")
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn prop_p_plus_in_unit_interval(c in arb_chain()) {
                let p = c.p_plus();
                prop_assert!(p > 0.0 && p <= 1.0, "P+ = {p}");
                // P+ ≤ 1 − P_ud: an immediate crash rules out returning.
                prop_assert!(p <= 1.0 - c.p_ud() + 1e-12);
            }

            #[test]
            fn prop_p_plus_matches_series(c in arb_chain()) {
                prop_assert!((c.p_plus() - c.p_plus_numeric()).abs() < 1e-9);
            }

            #[test]
            fn prop_e_up_matches_series(c in arb_chain()) {
                prop_assert!((c.e_up() - c.e_up_numeric()).abs() < 1e-6);
            }

            #[test]
            fn prop_e_w_superlinear_monotone(c in arb_chain(), w in 1u64..500) {
                let ew = c.e_w(w);
                prop_assert!(ew >= w as f64 - 1e-9, "E({w}) = {ew} < W");
                prop_assert!(c.e_w(w + 1) > ew - 1e-12);
            }

            #[test]
            fn prop_stationary_is_fixed_point(c in arb_chain()) {
                let pi = c.stationary();
                prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                let stepped = c.to_chain().step_distribution(&pi);
                for (a, b) in pi.iter().zip(&stepped) {
                    prop_assert!((a - b).abs() < 1e-8);
                }
            }

            #[test]
            fn prop_p_ud_exact_decreasing_and_bounded(c in arb_chain(), k in 2u64..60) {
                let pk = c.p_ud_exact(k);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&pk));
                prop_assert!(c.p_ud_exact(k + 1) <= pk + 1e-12);
                // Survival cannot beat the best single-step survival.
                let best = (1.0 - c.p_ud()).max(1.0 - c.p_rd());
                prop_assert!(pk <= best.powi((k - 1) as i32) + 1e-9);
            }

            #[test]
            fn prop_chain_stats_agree_with_direct(c in arb_chain(), w in 1u64..200) {
                let stats = ChainStats::new(c.clone());
                prop_assert!((stats.p_plus() - c.p_plus()).abs() < 1e-12);
                prop_assert!((stats.e_w(w) - c.e_w(w)).abs() < 1e-6 * c.e_w(w));
            }

            #[test]
            fn prop_estimation_recovers_chain(c in arb_chain()) {
                use crate::estimate::estimate_from_trace;
                let mut stream = AvailabilityStream::new(
                    c.clone(),
                    ProcState::Up,
                    vg_des::rng::SeedPath::root(7).rng(),
                );
                let trace = stream.take_vec(60_000);
                let est = estimate_from_trace(&trace, 0.5).expect("smoothed");
                for i in 0..3 {
                    for j in 0..3 {
                        prop_assert!(
                            (est.raw()[i][j] - c.raw()[i][j]).abs() < 0.05,
                            "P[{i}][{j}]: {} vs {}", est.raw()[i][j], c.raw()[i][j]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn display_codes() {
        assert_eq!(ProcState::Up.to_string(), "u");
        assert_eq!(ProcState::Reclaimed.to_string(), "r");
        assert_eq!(ProcState::Down.to_string(), "d");
    }
}
