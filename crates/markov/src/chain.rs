//! Generic finite Markov chains in discrete time.
//!
//! Provides validation, stationary distributions (direct linear solve plus a
//! power-iteration cross-check), reachability analysis, expected hitting
//! times and absorption probabilities. The 3-state availability model of the
//! paper ([`crate::availability`]) is a specialization; keeping the generic
//! machinery separate lets the test-suite verify every closed form of the
//! paper's Section 5 against an independent derivation.

use crate::matrix::{MatrixError, SquareMatrix};
use vg_des::rng::StreamRng;

/// Errors for chain construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainError {
    /// A row does not sum to 1 (within tolerance) or has entries outside `[0, 1]`.
    NotStochastic {
        /// Offending row.
        row: usize,
    },
    /// The requested quantity needs an irreducible chain.
    Reducible,
    /// Underlying linear-algebra failure.
    Matrix(MatrixError),
    /// The target state set is empty or out of range.
    BadTargetSet,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotStochastic { row } => write!(f, "row {row} is not a probability vector"),
            Self::Reducible => write!(f, "chain is not irreducible"),
            Self::Matrix(e) => write!(f, "linear algebra failed: {e}"),
            Self::BadTargetSet => write!(f, "invalid target state set"),
        }
    }
}

impl std::error::Error for ChainError {}

impl From<MatrixError> for ChainError {
    fn from(e: MatrixError) -> Self {
        Self::Matrix(e)
    }
}

/// A discrete-time Markov chain over states `0..n` with row-stochastic
/// transition matrix `P`, `P[i][j] = Pr(X_{t+1}=j | X_t=i)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    p: SquareMatrix,
}

/// Tolerance for stochasticity validation.
const ROW_SUM_TOL: f64 = 1e-9;

impl MarkovChain {
    /// Builds a chain from a transition matrix, validating stochasticity.
    pub fn new(p: SquareMatrix) -> Result<Self, ChainError> {
        for i in 0..p.n() {
            let mut sum = 0.0;
            for j in 0..p.n() {
                let x = p[(i, j)];
                if !(0.0..=1.0 + ROW_SUM_TOL).contains(&x) || x.is_nan() {
                    return Err(ChainError::NotStochastic { row: i });
                }
                sum += x;
            }
            if (sum - 1.0).abs() > ROW_SUM_TOL {
                return Err(ChainError::NotStochastic { row: i });
            }
        }
        Ok(Self { p })
    }

    /// Builds from row slices (convenience for tests and examples).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, ChainError> {
        Self::new(SquareMatrix::from_rows(rows))
    }

    /// Number of states.
    #[must_use]
    pub fn n(&self) -> usize {
        self.p.n()
    }

    /// The transition matrix.
    #[must_use]
    pub fn matrix(&self) -> &SquareMatrix {
        &self.p
    }

    /// Transition probability `i -> j`.
    #[must_use]
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.p[(i, j)]
    }

    /// One step of distribution evolution: `dist · P`.
    #[must_use]
    pub fn step_distribution(&self, dist: &[f64]) -> Vec<f64> {
        self.p.vec_mul(dist)
    }

    /// States reachable from `start` (including itself) following positive-
    /// probability edges.
    #[must_use]
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let n = self.n();
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(i) = stack.pop() {
            for j in 0..n {
                if self.p[(i, j)] > 0.0 && !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        seen
    }

    /// True if every state reaches every other state.
    #[must_use]
    pub fn is_irreducible(&self) -> bool {
        (0..self.n()).all(|i| self.reachable_from(i).iter().all(|&r| r))
    }

    /// Stationary distribution `π` with `π P = π`, `Σ π = 1`, by direct
    /// linear solve (replace one balance equation by the normalization).
    ///
    /// Requires irreducibility (otherwise the stationary distribution is not
    /// unique and the solve may fail or return one of many).
    pub fn stationary(&self) -> Result<Vec<f64>, ChainError> {
        if !self.is_irreducible() {
            return Err(ChainError::Reducible);
        }
        let n = self.n();
        // (P^T − I) π = 0 with the last row replaced by Σ π = 1.
        let mut a = self.p.transpose();
        for i in 0..n {
            a[(i, i)] -= 1.0;
        }
        for j in 0..n {
            a[(n - 1, j)] = 1.0;
        }
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        let mut pi = a.solve(&b)?;
        // Clean tiny negative round-off and renormalize.
        for x in &mut pi {
            if *x < 0.0 {
                debug_assert!(*x > -1e-9, "stationary solve produced {x}");
                *x = 0.0;
            }
        }
        let sum: f64 = pi.iter().sum();
        for x in &mut pi {
            *x /= sum;
        }
        Ok(pi)
    }

    /// Stationary distribution by power iteration — used as a cross-check of
    /// [`Self::stationary`]. Converges for aperiodic irreducible chains.
    #[must_use]
    pub fn stationary_power(&self, tol: f64, max_iters: usize) -> Vec<f64> {
        let n = self.n();
        let mut dist = vec![1.0 / n as f64; n];
        for _ in 0..max_iters {
            let next = self.step_distribution(&dist);
            let diff: f64 = next.iter().zip(&dist).map(|(a, b)| (a - b).abs()).sum();
            dist = next;
            if diff < tol {
                break;
            }
        }
        dist
    }

    /// Expected number of steps to first reach any state in `targets`,
    /// starting from each state (0 for target states themselves).
    ///
    /// Solves `(I − Q) h = 1` on the non-target block.
    pub fn expected_hitting_times(&self, targets: &[usize]) -> Result<Vec<f64>, ChainError> {
        let n = self.n();
        if targets.is_empty() || targets.iter().any(|&t| t >= n) {
            return Err(ChainError::BadTargetSet);
        }
        let is_target = {
            let mut v = vec![false; n];
            for &t in targets {
                v[t] = true;
            }
            v
        };
        let others: Vec<usize> = (0..n).filter(|&i| !is_target[i]).collect();
        if others.is_empty() {
            return Ok(vec![0.0; n]);
        }
        let m = others.len();
        let mut a = SquareMatrix::identity(m);
        for (r, &i) in others.iter().enumerate() {
            for (c, &j) in others.iter().enumerate() {
                a[(r, c)] -= self.p[(i, j)];
            }
        }
        let h = a.solve(&vec![1.0; m])?;
        let mut out = vec![0.0; n];
        for (r, &i) in others.iter().enumerate() {
            out[i] = h[r];
        }
        Ok(out)
    }

    /// Probability, from each state, of reaching a state in `good` before
    /// any state in `bad` (states in `good` map to 1, in `bad` to 0).
    ///
    /// `good` and `bad` must be disjoint and non-empty.
    pub fn absorption_probability(
        &self,
        good: &[usize],
        bad: &[usize],
    ) -> Result<Vec<f64>, ChainError> {
        let n = self.n();
        if good.is_empty()
            || bad.is_empty()
            || good.iter().chain(bad).any(|&t| t >= n)
            || good.iter().any(|g| bad.contains(g))
        {
            return Err(ChainError::BadTargetSet);
        }
        let mut class = vec![0u8; n]; // 0 = transient, 1 = good, 2 = bad
        for &g in good {
            class[g] = 1;
        }
        for &b in bad {
            class[b] = 2;
        }
        let transient: Vec<usize> = (0..n).filter(|&i| class[i] == 0).collect();
        let mut out = vec![0.0; n];
        for &g in good {
            out[g] = 1.0;
        }
        if transient.is_empty() {
            return Ok(out);
        }
        let m = transient.len();
        // (I − Q) x = R·1_good  restricted to transient states.
        let mut a = SquareMatrix::identity(m);
        let mut b = vec![0.0; m];
        for (r, &i) in transient.iter().enumerate() {
            for (c, &j) in transient.iter().enumerate() {
                a[(r, c)] -= self.p[(i, j)];
            }
            for &g in good {
                b[r] += self.p[(i, g)];
            }
        }
        let x = a.solve(&b)?;
        for (r, &i) in transient.iter().enumerate() {
            out[i] = x[r];
        }
        Ok(out)
    }

    /// Total-variation distance between two distributions over the states.
    #[must_use]
    pub fn total_variation(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "size mismatch");
        0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
    }

    /// Distribution after `t` steps from `start` (via matrix power).
    #[must_use]
    pub fn distribution_after(&self, start: &[f64], t: u64) -> Vec<f64> {
        self.p.pow(t).vec_mul(start)
    }

    /// ε-mixing time: the smallest `t` such that, from *every* starting
    /// state, the `t`-step distribution is within total variation `eps` of
    /// the stationary distribution. Searches `t = 1, 2, 4, …` then binary
    /// refines; returns `None` if not mixed by `max_t` (periodic chains
    /// never mix pointwise).
    pub fn mixing_time(&self, eps: f64, max_t: u64) -> Result<Option<u64>, ChainError> {
        assert!(eps > 0.0);
        let pi = self.stationary()?;
        let n = self.n();
        let mixed_at = |t: u64| -> bool {
            let pt = self.p.pow(t);
            (0..n).all(|i| {
                let row: Vec<f64> = (0..n).map(|j| pt[(i, j)]).collect();
                Self::total_variation(&row, &pi) <= eps
            })
        };
        // Exponential search for an upper bound.
        let mut hi = 1u64;
        while hi <= max_t && !mixed_at(hi) {
            hi *= 2;
        }
        if hi > max_t {
            return Ok(None);
        }
        // Binary search in (hi/2, hi]; monotone because TV distance to π is
        // non-increasing in t for every start.
        let mut lo = hi / 2; // not mixed (or 0)
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if mixed_at(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(Some(hi))
    }

    /// Expected return time to state `i` (first revisit after leaving),
    /// which by Kac's formula equals `1 / π_i` for an irreducible chain.
    pub fn expected_return_time(&self, i: usize) -> Result<f64, ChainError> {
        let pi = self.stationary()?;
        if pi[i] <= 0.0 {
            return Err(ChainError::Reducible);
        }
        Ok(1.0 / pi[i])
    }

    /// Expected return time to `i` computed *structurally* (first-step
    /// decomposition over hitting times), used by tests to verify Kac's
    /// formula: `R_i = 1 + Σ_j P_{i,j} · h_j` where `h_j` is the expected
    /// hitting time of `i` from `j`.
    pub fn expected_return_time_structural(&self, i: usize) -> Result<f64, ChainError> {
        let h = self.expected_hitting_times(&[i])?;
        Ok(1.0 + (0..self.n()).map(|j| self.prob(i, j) * h[j]).sum::<f64>())
    }

    /// Samples the next state from `current`.
    #[must_use]
    pub fn sample_next(&self, current: usize, rng: &mut StreamRng) -> usize {
        let mut u = rng.f64();
        for j in 0..self.n() {
            let p = self.p[(current, j)];
            if u < p {
                return j;
            }
            u -= p;
        }
        // Round-off slack: return the last state with positive probability.
        (0..self.n())
            .rev()
            .find(|&j| self.p[(current, j)] > 0.0)
            .unwrap_or(current)
    }

    /// Simulates a path of `len` states starting at `start` (inclusive).
    #[must_use]
    pub fn simulate(&self, start: usize, len: usize, rng: &mut StreamRng) -> Vec<usize> {
        let mut path = Vec::with_capacity(len);
        let mut s = start;
        for _ in 0..len {
            path.push(s);
            s = self.sample_next(s, rng);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_des::rng::SeedPath;

    fn two_state() -> MarkovChain {
        MarkovChain::from_rows(&[vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap()
    }

    #[test]
    fn rejects_non_stochastic_rows() {
        assert!(matches!(
            MarkovChain::from_rows(&[vec![0.5, 0.4], vec![0.5, 0.5]]),
            Err(ChainError::NotStochastic { row: 0 })
        ));
        assert!(matches!(
            MarkovChain::from_rows(&[vec![1.2, -0.2], vec![0.5, 0.5]]),
            Err(ChainError::NotStochastic { row: 0 })
        ));
    }

    #[test]
    fn stationary_two_state_closed_form() {
        // π_0 = q/(p+q) with p = P01, q = P10.
        let c = two_state();
        let pi = c.stationary().unwrap();
        assert!((pi[0] - 0.8).abs() < 1e-12);
        assert!((pi[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stationary_is_fixed_point() {
        let c = two_state();
        let pi = c.stationary().unwrap();
        let stepped = c.step_distribution(&pi);
        for (a, b) in pi.iter().zip(&stepped) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn stationary_power_agrees_with_solve() {
        let c = MarkovChain::from_rows(&[
            vec![0.5, 0.25, 0.25],
            vec![0.1, 0.8, 0.1],
            vec![0.3, 0.3, 0.4],
        ])
        .unwrap();
        let direct = c.stationary().unwrap();
        let power = c.stationary_power(1e-14, 100_000);
        for (a, b) in direct.iter().zip(&power) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn reducible_chain_detected() {
        let c = MarkovChain::from_rows(&[vec![1.0, 0.0], vec![0.5, 0.5]]).unwrap();
        assert!(!c.is_irreducible());
        assert_eq!(c.stationary(), Err(ChainError::Reducible));
    }

    #[test]
    fn reachability() {
        let c = MarkovChain::from_rows(&[
            vec![0.5, 0.5, 0.0],
            vec![0.0, 0.5, 0.5],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        assert_eq!(c.reachable_from(0), vec![true, true, true]);
        assert_eq!(c.reachable_from(2), vec![false, false, true]);
    }

    #[test]
    fn hitting_time_gamblers_walk() {
        // Symmetric walk on 0..=2 with absorbing 0 and 2; from 1 the expected
        // time to hit {0,2} is 1 step... with p=1/2 to each neighbour it's 1.
        let c = MarkovChain::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.5, 0.0, 0.5],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let h = c.expected_hitting_times(&[0, 2]).unwrap();
        assert_eq!(h[0], 0.0);
        assert!((h[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hitting_time_geometric() {
        // From state 0, hit state 1 with prob p each step: E = 1/p.
        let p = 0.25;
        let c = MarkovChain::from_rows(&[vec![1.0 - p, p], vec![0.0, 1.0]]).unwrap();
        let h = c.expected_hitting_times(&[1]).unwrap();
        assert!((h[0] - 1.0 / p).abs() < 1e-9);
    }

    #[test]
    fn absorption_probability_gambler() {
        // States 0..=4, absorbing at 0 and 4, fair coin: from i, P(hit 4 first) = i/4.
        let rows = vec![
            vec![1.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.5, 0.0, 0.5, 0.0, 0.0],
            vec![0.0, 0.5, 0.0, 0.5, 0.0],
            vec![0.0, 0.0, 0.5, 0.0, 0.5],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
        ];
        let c = MarkovChain::from_rows(&rows).unwrap();
        let probs = c.absorption_probability(&[4], &[0]).unwrap();
        for i in 0..=4 {
            assert!((probs[i] - i as f64 / 4.0).abs() < 1e-10, "state {i}");
        }
    }

    #[test]
    fn absorption_rejects_overlapping_sets() {
        let c = two_state();
        assert_eq!(
            c.absorption_probability(&[0], &[0]),
            Err(ChainError::BadTargetSet)
        );
    }

    #[test]
    fn simulation_frequencies_approach_stationary() {
        let c = two_state();
        let mut rng = SeedPath::root(7).rng();
        let path = c.simulate(0, 200_000, &mut rng);
        let freq0 = path.iter().filter(|&&s| s == 0).count() as f64 / path.len() as f64;
        assert!((freq0 - 0.8).abs() < 0.01, "freq0 {freq0}");
    }

    #[test]
    fn simulate_length_and_start() {
        let c = two_state();
        let mut rng = SeedPath::root(1).rng();
        let path = c.simulate(1, 10, &mut rng);
        assert_eq!(path.len(), 10);
        assert_eq!(path[0], 1);
    }

    #[test]
    fn total_variation_properties() {
        assert_eq!(MarkovChain::total_variation(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((MarkovChain::total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-15);
        assert!((MarkovChain::total_variation(&[0.7, 0.3], &[0.5, 0.5]) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn distribution_after_matches_iterated_steps() {
        let c = two_state();
        let start = vec![1.0, 0.0];
        let mut iterated = start.clone();
        for _ in 0..6 {
            iterated = c.step_distribution(&iterated);
        }
        let direct = c.distribution_after(&start, 6);
        for (a, b) in iterated.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mixing_time_decreases_with_looser_eps() {
        let c = two_state();
        let tight = c.mixing_time(1e-6, 10_000).unwrap().unwrap();
        let loose = c.mixing_time(1e-2, 10_000).unwrap().unwrap();
        assert!(loose <= tight, "loose {loose} vs tight {tight}");
        // After the mixing time, TV really is small from both starts.
        let pi = c.stationary().unwrap();
        for start in [vec![1.0, 0.0], vec![0.0, 1.0]] {
            let d = c.distribution_after(&start, tight);
            assert!(MarkovChain::total_variation(&d, &pi) <= 1e-6);
        }
    }

    #[test]
    fn periodic_chain_never_mixes() {
        let c = MarkovChain::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert_eq!(c.mixing_time(0.1, 1 << 12).unwrap(), None);
    }

    #[test]
    fn kac_formula_matches_structural_return_time() {
        let chains = vec![
            two_state(),
            MarkovChain::from_rows(&[
                vec![0.5, 0.25, 0.25],
                vec![0.1, 0.8, 0.1],
                vec![0.3, 0.3, 0.4],
            ])
            .unwrap(),
        ];
        for c in chains {
            for i in 0..c.n() {
                let kac = c.expected_return_time(i).unwrap();
                let structural = c.expected_return_time_structural(i).unwrap();
                assert!(
                    (kac - structural).abs() < 1e-9,
                    "state {i}: Kac {kac} vs structural {structural}"
                );
            }
        }
    }

    #[test]
    fn sample_next_never_picks_zero_probability() {
        let c = MarkovChain::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let mut rng = SeedPath::root(3).rng();
        for _ in 0..100 {
            assert_eq!(c.sample_next(0, &mut rng), 1);
            assert_eq!(c.sample_next(1, &mut rng), 0);
        }
    }
}
