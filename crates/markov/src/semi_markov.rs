//! Semi-Markov availability processes (non-memoryless sojourns).
//!
//! The paper's conclusion (Section 8) names the Markov assumption as its main
//! threat to validity and proposes studying stochastic models with realistic
//! (Weibull / log-normal) interval durations. A semi-Markov process keeps the
//! *embedded* jump chain (which state follows which) but draws the sojourn
//! time in each state from an arbitrary positive distribution.
//!
//! With geometric sojourns the process reduces exactly to the Markov model —
//! [`SemiMarkovModel::from_markov`] performs that conversion and the tests
//! verify the equivalence, which pins the semantics of both implementations.

use crate::availability::{AvailabilityChain, ProcState};
use crate::dist::SojournDist;
use serde::{Deserialize, Serialize};
use vg_des::rng::StreamRng;

/// A 3-state semi-Markov availability model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemiMarkovModel {
    /// Embedded jump probabilities: `jump[i][j]` is the probability that the
    /// next state is `j` given a sojourn in `i` just ended. Diagonal must be
    /// zero; rows must sum to 1.
    jump: [[f64; 3]; 3],
    /// Sojourn-time distribution for each state (order `u, r, d`).
    sojourn: [SojournDist; 3],
}

/// Validation error for semi-Markov models.
#[derive(Debug, Clone, PartialEq)]
pub struct SemiMarkovError(pub String);

impl std::fmt::Display for SemiMarkovError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid semi-Markov model: {}", self.0)
    }
}

impl std::error::Error for SemiMarkovError {}

impl SemiMarkovModel {
    /// Builds and validates a model.
    pub fn new(jump: [[f64; 3]; 3], sojourn: [SojournDist; 3]) -> Result<Self, SemiMarkovError> {
        for (i, row) in jump.iter().enumerate() {
            if row[i] != 0.0 {
                return Err(SemiMarkovError(format!(
                    "jump matrix diagonal must be zero (row {i})"
                )));
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-9 || row.iter().any(|&x| !(0.0..=1.0).contains(&x)) {
                return Err(SemiMarkovError(format!("jump row {i} is not stochastic")));
            }
        }
        for (i, d) in sojourn.iter().enumerate() {
            d.validate()
                .map_err(|e| SemiMarkovError(format!("sojourn for state {i}: {e}")))?;
        }
        Ok(Self { jump, sojourn })
    }

    /// Converts a Markov [`AvailabilityChain`] into the equivalent
    /// semi-Markov model: geometric sojourns with exit probability
    /// `1 − P_{x,x}` and embedded jumps `P_{x,y} / (1 − P_{x,x})`.
    ///
    /// Requires every self-loop probability to be `< 1` (no absorbing state).
    pub fn from_markov(chain: &AvailabilityChain) -> Result<Self, SemiMarkovError> {
        let p = chain.raw();
        let mut jump = [[0.0; 3]; 3];
        let mut sojourn = [
            SojournDist::Deterministic { t: 1 },
            SojournDist::Deterministic { t: 1 },
            SojournDist::Deterministic { t: 1 },
        ];
        for i in 0..3 {
            let stay = p[i][i];
            let exit = 1.0 - stay;
            if exit <= 0.0 {
                return Err(SemiMarkovError(format!("state {i} is absorbing")));
            }
            for j in 0..3 {
                if i != j {
                    jump[i][j] = p[i][j] / exit;
                }
            }
            sojourn[i] = SojournDist::Geometric { p: exit };
        }
        Self::new(jump, sojourn)
    }

    /// A BOINC-style "desktop" template: long heavy-tailed `UP` stretches
    /// (Weibull, shape < 1), moderate log-normal `RECLAIMED` interruptions
    /// (owner using the machine), rare long `DOWN` repairs. `scale_up` sets
    /// the Weibull scale of the UP sojourn in slots.
    #[must_use]
    pub fn desktop_template(scale_up: f64) -> Self {
        Self::new(
            [
                // After UP: usually reclaimed by the owner, sometimes a crash.
                [0.0, 0.85, 0.15],
                // After RECLAIMED: almost always released, occasionally shut down.
                [0.9, 0.0, 0.1],
                // After DOWN (reboot/repair): machine returns available.
                [1.0, 0.0, 0.0],
            ],
            [
                SojournDist::Weibull {
                    scale: scale_up,
                    shape: 0.7,
                },
                SojournDist::LogNormal {
                    mu: 2.0,
                    sigma: 0.8,
                },
                SojournDist::Weibull {
                    scale: 4.0 * scale_up,
                    shape: 1.0,
                },
            ],
        )
        .expect("template is valid")
    }

    /// Embedded jump matrix.
    #[must_use]
    pub fn jump(&self) -> &[[f64; 3]; 3] {
        &self.jump
    }

    /// Sojourn distributions (order `u, r, d`).
    #[must_use]
    pub fn sojourn(&self) -> &[SojournDist; 3] {
        &self.sojourn
    }

    /// Long-run fraction of time in each state:
    /// `π_i ∝ ν_i · E[sojourn_i]` where `ν` is the stationary distribution of
    /// the embedded jump chain (mean sojourns use [`SojournDist::approx_mean`]).
    #[must_use]
    pub fn occupancy(&self) -> [f64; 3] {
        // Stationary distribution of the embedded chain by *damped* power
        // iteration: ν ← (ν + νJ)/2. The damping keeps the same fixed point
        // but converges even for periodic embedded chains (a zero-diagonal
        // 2-cycle is periodic, and undamped iteration would oscillate).
        let mut nu = [1.0 / 3.0; 3];
        for _ in 0..100_000 {
            let mut next = [0.0; 3];
            for i in 0..3 {
                for j in 0..3 {
                    next[j] += nu[i] * self.jump[i][j];
                }
            }
            let mut diff = 0.0;
            for i in 0..3 {
                next[i] = 0.5 * (next[i] + nu[i]);
                diff += (next[i] - nu[i]).abs();
            }
            nu = next;
            if diff < 1e-14 {
                break;
            }
        }
        let mut occ = [0.0; 3];
        let mut total = 0.0;
        for i in 0..3 {
            occ[i] = nu[i] * self.sojourn[i].approx_mean();
            total += occ[i];
        }
        for o in &mut occ {
            *o /= total;
        }
        occ
    }

    /// Samples the next state after leaving `from`.
    #[must_use]
    pub fn sample_jump(&self, from: ProcState, rng: &mut StreamRng) -> ProcState {
        let row = &self.jump[from.index()];
        let mut u = rng.f64();
        for (j, &p) in row.iter().enumerate() {
            if u < p {
                return ProcState::from_index(j);
            }
            u -= p;
        }
        ProcState::from_index(row.iter().rposition(|&p| p > 0.0).unwrap_or(0))
    }
}

/// Endless per-slot state stream driven by a semi-Markov model.
///
/// Mirrors [`crate::availability::AvailabilityStream`] so the simulator can
/// consume either through the same interface.
#[derive(Debug, Clone)]
pub struct SemiMarkovStream {
    model: SemiMarkovModel,
    state: ProcState,
    /// Slots remaining in the current sojourn (including the next emitted).
    remaining: u64,
    rng: StreamRng,
}

impl SemiMarkovStream {
    /// Creates a stream starting a fresh sojourn in `start`.
    #[must_use]
    pub fn new(model: SemiMarkovModel, start: ProcState, mut rng: StreamRng) -> Self {
        let remaining = model.sojourn[start.index()].sample(&mut rng);
        Self {
            model,
            state: start,
            remaining,
            rng,
        }
    }

    /// Emits the state for the next slot.
    pub fn next_state(&mut self) -> ProcState {
        debug_assert!(self.remaining >= 1);
        let out = self.state;
        self.remaining -= 1;
        if self.remaining == 0 {
            self.state = self.model.sample_jump(self.state, &mut self.rng);
            self.remaining = self.model.sojourn[self.state.index()].sample(&mut self.rng);
        }
        out
    }

    /// Emits `len` states into a vector.
    pub fn take_vec(&mut self, len: usize) -> Vec<ProcState> {
        (0..len).map(|_| self.next_state()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_des::rng::SeedPath;

    fn markov_chain() -> AvailabilityChain {
        AvailabilityChain::new([[0.92, 0.05, 0.03], [0.10, 0.85, 0.05], [0.04, 0.02, 0.94]])
            .unwrap()
    }

    #[test]
    fn rejects_nonzero_diagonal() {
        let bad = SemiMarkovModel::new(
            [[0.1, 0.8, 0.1], [0.9, 0.0, 0.1], [1.0, 0.0, 0.0]],
            [
                SojournDist::Deterministic { t: 1 },
                SojournDist::Deterministic { t: 1 },
                SojournDist::Deterministic { t: 1 },
            ],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn rejects_invalid_sojourn() {
        let bad = SemiMarkovModel::new(
            [[0.0, 0.9, 0.1], [0.9, 0.0, 0.1], [1.0, 0.0, 0.0]],
            [
                SojournDist::Geometric { p: 0.0 },
                SojournDist::Deterministic { t: 1 },
                SojournDist::Deterministic { t: 1 },
            ],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn from_markov_jump_probabilities() {
        let c = markov_chain();
        let sm = SemiMarkovModel::from_markov(&c).unwrap();
        // From UP the exit mass is 0.08 split 0.05 / 0.03.
        assert!((sm.jump()[0][1] - 0.05 / 0.08).abs() < 1e-12);
        assert!((sm.jump()[0][2] - 0.03 / 0.08).abs() < 1e-12);
        match sm.sojourn()[0] {
            SojournDist::Geometric { p } => assert!((p - 0.08).abs() < 1e-12),
            ref other => panic!("expected geometric, got {other:?}"),
        }
    }

    #[test]
    fn from_markov_rejects_absorbing() {
        let c =
            AvailabilityChain::new([[1.0, 0.0, 0.0], [0.1, 0.8, 0.1], [0.1, 0.1, 0.8]]).unwrap();
        assert!(SemiMarkovModel::from_markov(&c).is_err());
    }

    #[test]
    fn geometric_semi_markov_matches_markov_statistics() {
        // The converted process must have the same 1-step transition
        // frequencies as the original Markov chain.
        let c = markov_chain();
        let sm = SemiMarkovModel::from_markov(&c).unwrap();
        let mut stream = SemiMarkovStream::new(sm, ProcState::Up, SeedPath::root(11).rng());
        let n = 400_000usize;
        let seq = stream.take_vec(n);
        let mut counts = [[0u64; 3]; 3];
        for w in seq.windows(2) {
            counts[w[0].index()][w[1].index()] += 1;
        }
        for i in 0..3 {
            let row_total: u64 = counts[i].iter().sum();
            for j in 0..3 {
                let freq = counts[i][j] as f64 / row_total as f64;
                let expect = c.raw()[i][j];
                assert!(
                    (freq - expect).abs() < 0.01,
                    "P[{i}][{j}] freq {freq} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn occupancy_matches_markov_stationary_for_geometric() {
        let c = markov_chain();
        let sm = SemiMarkovModel::from_markov(&c).unwrap();
        let occ = sm.occupancy();
        let pi = c.stationary();
        for i in 0..3 {
            assert!(
                (occ[i] - pi[i]).abs() < 1e-6,
                "state {i}: {} vs {}",
                occ[i],
                pi[i]
            );
        }
    }

    #[test]
    fn occupancy_weights_by_mean_sojourn() {
        // Two states alternate deterministically; the one with 3-slot
        // sojourns occupies 75% of time. (Third state unreachable but the
        // jump matrix must still be stochastic; give it an exit.)
        let sm = SemiMarkovModel::new(
            [[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]],
            [
                SojournDist::Deterministic { t: 3 },
                SojournDist::Deterministic { t: 1 },
                SojournDist::Deterministic { t: 1 },
            ],
        )
        .unwrap();
        let occ = sm.occupancy();
        assert!((occ[0] - 0.75).abs() < 1e-9, "{occ:?}");
        assert!((occ[1] - 0.25).abs() < 1e-9, "{occ:?}");
    }

    #[test]
    fn stream_respects_sojourn_lengths() {
        // Deterministic sojourns: UP for 2, RECLAIMED for 3, cycling.
        let sm = SemiMarkovModel::new(
            [[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]],
            [
                SojournDist::Deterministic { t: 2 },
                SojournDist::Deterministic { t: 3 },
                SojournDist::Deterministic { t: 1 },
            ],
        )
        .unwrap();
        let mut s = SemiMarkovStream::new(sm, ProcState::Up, SeedPath::root(3).rng());
        let seq = s.take_vec(10);
        use ProcState::{Reclaimed as R, Up as U};
        assert_eq!(seq, vec![U, U, R, R, R, U, U, R, R, R]);
    }

    #[test]
    fn stream_is_deterministic() {
        let sm = SemiMarkovModel::desktop_template(50.0);
        let mut a = SemiMarkovStream::new(sm.clone(), ProcState::Up, SeedPath::root(9).rng());
        let mut b = SemiMarkovStream::new(sm, ProcState::Up, SeedPath::root(9).rng());
        assert_eq!(a.take_vec(1000), b.take_vec(1000));
    }

    #[test]
    fn desktop_template_mostly_up() {
        let sm = SemiMarkovModel::desktop_template(100.0);
        let occ = sm.occupancy();
        assert!(occ[0] > 0.2, "UP occupancy too low: {occ:?}");
        assert!((occ.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
