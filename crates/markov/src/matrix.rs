//! Small dense square matrices over `f64`.
//!
//! Sized for Markov chains with a handful of states (the paper's chains have
//! three). Provides multiplication, powers, Gaussian elimination with partial
//! pivoting, and inversion — enough to compute stationary distributions,
//! hitting times and absorbing-chain quantities exactly, which in turn lets
//! the test-suite verify the paper's closed-form formulas against independent
//! linear-algebra derivations.

/// Errors produced by matrix routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Dimensions do not match the operation.
    DimensionMismatch,
    /// The system is singular (or numerically so).
    Singular,
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DimensionMismatch => write!(f, "matrix dimension mismatch"),
            Self::Singular => write!(f, "singular matrix"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense `n × n` matrix in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// Zero matrix of size `n`.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix size must be positive");
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix of size `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from rows; every row must have length `rows.len()`.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        assert!(n > 0, "matrix size must be positive");
        let mut m = Self::zeros(n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            for (j, &x) in row.iter().enumerate() {
                m[(i, j)] = x;
            }
        }
        m
    }

    /// Matrix size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    /// Panics on size mismatch.
    #[must_use]
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.n, rhs.n, "size mismatch");
        let n = self.n;
        let mut out = Self::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    #[must_use]
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n, "size mismatch");
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Row-vector–matrix product `v · self` (distribution step for a
    /// row-stochastic transition matrix).
    #[must_use]
    pub fn vec_mul(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n, "size mismatch");
        (0..self.n)
            .map(|j| (0..self.n).map(|i| v[i] * self[(i, j)]).sum())
            .collect()
    }

    /// Matrix power by repeated squaring. `pow(0)` is the identity.
    #[must_use]
    pub fn pow(&self, mut e: u64) -> Self {
        let mut result = Self::identity(self.n);
        let mut base = self.clone();
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(&base);
            }
            base = base.mul(&base);
            e >>= 1;
        }
        result
    }

    /// Entry-wise maximum absolute difference.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.n, other.n, "size mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Solves `self · x = b` by Gaussian elimination with partial pivoting.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if b.len() != self.n {
            return Err(MatrixError::DimensionMismatch);
        }
        let n = self.n;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Pivot: largest magnitude in this column at or below the diagonal.
            // `total_cmp` orders NaNs deterministically instead of
            // panicking (identical to `partial_cmp` on real pivots: `abs`
            // collapses the ±0.0 distinction); the range `col..n` is never
            // empty inside this loop, so the fallback row is unreachable.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a[r1 * n + col].abs().total_cmp(&a[r2 * n + col].abs()))
                .unwrap_or(col);
            let pivot = a[pivot_row * n + col];
            if pivot.abs() < 1e-12 {
                return Err(MatrixError::Singular);
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            for row in (col + 1)..n {
                let factor = a[row * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for j in (col + 1)..n {
                sum -= a[col * n + j] * x[j];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }

    /// Matrix inverse via column-by-column solves.
    pub fn inverse(&self) -> Result<Self, MatrixError> {
        let n = self.n;
        let mut inv = Self::zeros(n);
        for col in 0..n {
            let mut e = vec![0.0; n];
            e[col] = 1.0;
            let x = self.solve(&e)?;
            for row in 0..n {
                inv[(row, col)] = x[row];
            }
        }
        Ok(inv)
    }

    /// Sum of each row (1.0 everywhere for a row-stochastic matrix).
    #[must_use]
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self[(i, j)]).sum())
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for SquareMatrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for SquareMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = SquareMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = SquareMatrix::identity(2);
        assert_eq!(m.mul(&i), m);
        assert_eq!(i.mul(&m), m);
    }

    #[test]
    fn multiplication_known_product() {
        let a = SquareMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = SquareMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.mul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn transpose_involution() {
        let m = SquareMatrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(0, 1)], 4.0);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let m = SquareMatrix::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8]]);
        let mut expect = SquareMatrix::identity(2);
        for _ in 0..7 {
            expect = expect.mul(&m);
        }
        assert!(m.pow(7).max_abs_diff(&expect) < 1e-12);
        assert_eq!(m.pow(0), SquareMatrix::identity(2));
        assert!(m.pow(1).max_abs_diff(&m) < 1e-15);
    }

    #[test]
    fn solve_known_system() {
        // x + 2y = 5 ; 3x + 4y = 11 -> x=1, y=2
        let m = SquareMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let x = m.solve(&[5.0, 11.0]).unwrap();
        assert!(close(x[0], 1.0));
        assert!(close(x[1], 2.0));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let m = SquareMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = m.solve(&[3.0, 4.0]).unwrap();
        assert!(close(x[0], 4.0));
        assert!(close(x[1], 3.0));
    }

    #[test]
    fn solve_singular_errors() {
        let m = SquareMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(m.solve(&[1.0, 2.0]), Err(MatrixError::Singular));
    }

    #[test]
    fn solve_dimension_mismatch_errors() {
        let m = SquareMatrix::identity(2);
        assert_eq!(m.solve(&[1.0]), Err(MatrixError::DimensionMismatch));
    }

    #[test]
    fn inverse_roundtrip() {
        let m = SquareMatrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]);
        let inv = m.inverse().unwrap();
        assert!(m.mul(&inv).max_abs_diff(&SquareMatrix::identity(2)) < 1e-10);
        assert!(inv.mul(&m).max_abs_diff(&SquareMatrix::identity(2)) < 1e-10);
    }

    #[test]
    fn mul_vec_and_vec_mul() {
        let m = SquareMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(m.vec_mul(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn row_sums_of_stochastic_matrix() {
        let m = SquareMatrix::from_rows(&[vec![0.5, 0.5], vec![0.1, 0.9]]);
        for s in m.row_sums() {
            assert!(close(s, 1.0));
        }
    }

    #[test]
    #[should_panic(expected = "row 1 has wrong length")]
    fn from_rows_rejects_ragged() {
        let _ = SquareMatrix::from_rows(&[vec![1.0, 2.0], vec![1.0]]);
    }
}
