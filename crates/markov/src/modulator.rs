//! Group-level outage modulators for correlated volatility.
//!
//! The paper's availability model draws every processor's state from an
//! independent per-worker chain; real desktop grids fail in *bursts* — a
//! switch reboot or a power dip takes an entire rack down at once. The
//! cheapest faithful model layers a **shared two-state modulator** on top of
//! the per-worker chains: each worker group follows one `Normal ⇄ Outage`
//! Markov chain, and while the group is in `Outage` every member is forced
//! `DOWN` regardless of what its private chain says. Per-slot cost is
//! O(groups), one RNG draw per group, and the identity chain
//! ([`OutageChain::identity`]) never leaves `Normal` — so the degenerate
//! configuration is byte-identical to the independent model as long as group
//! draws come from their own seed streams.

use vg_des::rng::StreamRng;

/// State of one group-level outage modulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModState {
    /// The group behaves normally: members follow their private chains.
    #[default]
    Normal,
    /// The group is in a correlated outage: members are forced `DOWN`.
    Outage,
}

impl ModState {
    /// True while the modulator forces its members `DOWN`.
    #[must_use]
    pub fn is_outage(self) -> bool {
        matches!(self, Self::Outage)
    }
}

/// Error constructing an [`OutageChain`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModulatorError {
    /// A transition probability fell outside `[0, 1]` (or was NaN).
    BadProbability {
        /// Which parameter: `"p_fail"` or `"p_recover"`.
        which: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for ModulatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadProbability { which, value } => {
                write!(f, "{which} = {value} is not a probability in [0, 1]")
            }
        }
    }
}

impl std::error::Error for ModulatorError {}

/// A two-state `Normal ⇄ Outage` Markov chain shared by one worker group.
///
/// `p_fail` is the per-slot probability of entering an outage from `Normal`;
/// `p_recover` the per-slot probability of leaving it. Sojourn times are
/// geometric: a burst lasts `1 / p_recover` slots in expectation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageChain {
    p_fail: f64,
    p_recover: f64,
}

impl OutageChain {
    /// Validated constructor: both parameters must be probabilities.
    pub fn new(p_fail: f64, p_recover: f64) -> Result<Self, ModulatorError> {
        if !(0.0..=1.0).contains(&p_fail) {
            return Err(ModulatorError::BadProbability {
                which: "p_fail",
                value: p_fail,
            });
        }
        if !(0.0..=1.0).contains(&p_recover) {
            return Err(ModulatorError::BadProbability {
                which: "p_recover",
                value: p_recover,
            });
        }
        Ok(Self { p_fail, p_recover })
    }

    /// The identity modulator: never fails, recovers immediately. A group
    /// driven by this chain is indistinguishable from no modulator at all
    /// (it still consumes one RNG draw per slot, from its *own* stream).
    #[must_use]
    pub fn identity() -> Self {
        Self {
            p_fail: 0.0,
            p_recover: 1.0,
        }
    }

    /// Per-slot probability of `Normal → Outage`.
    #[must_use]
    pub fn p_fail(&self) -> f64 {
        self.p_fail
    }

    /// Per-slot probability of `Outage → Normal`.
    #[must_use]
    pub fn p_recover(&self) -> f64 {
        self.p_recover
    }

    /// Samples the successor state. Always consumes exactly one `f64` draw,
    /// whatever the current state — a fixed draw schedule keeps replay and
    /// common-random-number pairing trivial.
    #[must_use]
    pub fn sample_next(&self, cur: ModState, rng: &mut StreamRng) -> ModState {
        let u = rng.f64();
        match cur {
            ModState::Normal => {
                if u < self.p_fail {
                    ModState::Outage
                } else {
                    ModState::Normal
                }
            }
            ModState::Outage => {
                if u < self.p_recover {
                    ModState::Normal
                } else {
                    ModState::Outage
                }
            }
        }
    }

    /// Stationary probability of being in `Outage`
    /// (`p_fail / (p_fail + p_recover)`; 0 for the identity chain).
    #[must_use]
    pub fn stationary_outage(&self) -> f64 {
        let denom = self.p_fail + self.p_recover;
        if denom == 0.0 {
            0.0
        } else {
            self.p_fail / denom
        }
    }

    /// Expected burst length in slots (`1 / p_recover`; infinite if the
    /// chain never recovers).
    #[must_use]
    pub fn mean_outage_len(&self) -> f64 {
        if self.p_recover == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.p_recover
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_des::rng::SeedPath;

    #[test]
    fn rejects_non_probabilities() {
        assert!(OutageChain::new(-0.1, 0.5).is_err());
        assert!(OutageChain::new(0.1, 1.5).is_err());
        assert!(OutageChain::new(f64::NAN, 0.5).is_err());
        assert!(OutageChain::new(0.0, 0.0).is_ok());
        assert!(OutageChain::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn identity_never_leaves_normal_but_draws() {
        let chain = OutageChain::identity();
        let mut rng = SeedPath::root(11).rng();
        let mut sibling = SeedPath::root(11).rng();
        let mut state = ModState::Normal;
        for _ in 0..1000 {
            state = chain.sample_next(state, &mut rng);
            assert_eq!(state, ModState::Normal);
        }
        // Exactly one draw per slot was consumed.
        for _ in 0..1000 {
            let _ = sibling.f64();
        }
        assert_eq!(rng.f64().to_bits(), sibling.f64().to_bits());
    }

    #[test]
    fn always_one_draw_regardless_of_state() {
        let chain = OutageChain::new(0.5, 0.5).unwrap();
        let mut rng = SeedPath::root(3).rng();
        let mut sibling = SeedPath::root(3).rng();
        let mut state = ModState::Normal;
        for _ in 0..64 {
            state = chain.sample_next(state, &mut rng);
            let _ = sibling.f64();
        }
        assert_eq!(rng.f64().to_bits(), sibling.f64().to_bits());
    }

    #[test]
    fn empirical_outage_fraction_matches_stationary() {
        let chain = OutageChain::new(0.02, 0.10).unwrap();
        let mut rng = SeedPath::root(77).rng();
        let mut state = ModState::Normal;
        let mut outage = 0u64;
        let total = 200_000u64;
        for _ in 0..total {
            state = chain.sample_next(state, &mut rng);
            if state.is_outage() {
                outage += 1;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let frac = outage as f64 / total as f64;
        let expect = chain.stationary_outage();
        assert!(
            (frac - expect).abs() < 0.01,
            "empirical {frac} vs stationary {expect}"
        );
        assert!((chain.mean_outage_len() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn sticky_outage_chain_stays_down() {
        let chain = OutageChain::new(1.0, 0.0).unwrap();
        let mut rng = SeedPath::root(5).rng();
        let mut state = ModState::Normal;
        state = chain.sample_next(state, &mut rng);
        assert!(state.is_outage());
        for _ in 0..32 {
            state = chain.sample_next(state, &mut rng);
            assert!(state.is_outage());
        }
        assert!(chain.mean_outage_len().is_infinite());
        assert!((chain.stationary_outage() - 1.0).abs() < 1e-12);
    }
}
