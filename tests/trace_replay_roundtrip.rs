//! End-to-end record/replay equivalence: availability recorded from a live
//! Markov platform, persisted through the trace-set text format, and
//! replayed into the simulator must yield the *identical* run — makespan,
//! counters, everything. This ties together `vg-markov` streams,
//! `vg-platform` trace I/O, and the `vg-sim` engine.

use volatile_grid::platform::{ProcessorSpec, TraceSet};
use volatile_grid::prelude::*;

fn markov_platform(p: usize, seed: u64) -> PlatformConfig {
    let mut rng = SeedPath::root(seed).rng();
    PlatformConfig {
        processors: (0..p)
            .map(|_| {
                let chain = AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99);
                let w = rng.u64_range_inclusive(2, 6);
                ProcessorConfig::markov(w, chain, StartPolicy::Up)
            })
            .collect(),
        ncom: 2,
    }
}

#[test]
fn recorded_traces_replay_identically() {
    let live = markov_platform(5, 77);
    let app = AppConfig {
        tasks_per_iteration: 6,
        iterations: 3,
        t_prog: 4,
        t_data: 1,
    };
    let trace_seed = SeedPath::root(123);

    // Run live.
    let live_report = Simulation::run_seeded(
        &live,
        &app,
        HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
        trace_seed,
        SimOptions::default(),
    )
    .expect("valid");
    assert!(live_report.finished());

    // Record the availability the run consumed (same seeds, enough slots).
    let horizon = live_report.slots_run as usize;
    let entries: Vec<(ProcessorSpec, Trace)> = live
        .processors
        .iter()
        .enumerate()
        .map(|(q, pc)| {
            let mut src = pc.avail.build_source(trace_seed.child(q as u64).rng());
            let trace: Trace = (0..horizon).map(|_| src.next_state()).collect();
            (pc.spec, trace)
        })
        .collect();

    // Persist + reload through the text format.
    let text = TraceSet::new(entries).to_text();
    let loaded = TraceSet::from_text(&text).expect("round-trip");
    assert_eq!(loaded.p(), live.p());

    // Rebuild the platform on replay sources. The scheduler needs the same
    // *beliefs* as the live run, so keep the Markov chains as `believed`.
    let replay = PlatformConfig {
        processors: live
            .processors
            .iter()
            .zip(&loaded.entries)
            .map(|(pc, (spec, trace))| ProcessorConfig {
                spec: *spec,
                avail: AvailabilityModelConfig::Replay {
                    trace: trace.clone(),
                    tail: TailBehavior::ReclaimedForever, // never reached
                },
                believed: Some(pc.believed_chain()),
            })
            .collect(),
        ncom: live.ncom,
    };
    let replay_report = Simulation::run_seeded(
        &replay,
        &app,
        HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
        SeedPath::root(999), // replay ignores trace seeds
        SimOptions::default(),
    )
    .expect("valid");

    assert_eq!(replay_report.makespan, live_report.makespan);
    assert_eq!(replay_report.counters, live_report.counters);
    assert_eq!(
        replay_report.iteration_completed_at,
        live_report.iteration_completed_at
    );
}

#[test]
fn replay_with_different_heuristic_still_within_recorded_horizon() {
    // Safety of the recording approach: a *different* heuristic on the same
    // recorded traces may need more slots than were recorded; with the
    // ReclaimedForever tail it can only see r beyond the horizon, so a
    // finished run must have stayed within it — or not finished at all.
    let live = markov_platform(5, 78);
    let app = AppConfig {
        tasks_per_iteration: 6,
        iterations: 2,
        t_prog: 4,
        t_data: 1,
    };
    let trace_seed = SeedPath::root(5);
    let live_report = Simulation::run_seeded(
        &live,
        &app,
        HeuristicKind::Emct.build(SeedPath::root(1).rng()),
        trace_seed,
        SimOptions::default(),
    )
    .expect("valid");
    let horizon = live_report.slots_run as usize + 50;

    let replay = PlatformConfig {
        processors: live
            .processors
            .iter()
            .enumerate()
            .map(|(q, pc)| {
                let mut src = pc.avail.build_source(trace_seed.child(q as u64).rng());
                let trace: Trace = (0..horizon).map(|_| src.next_state()).collect();
                ProcessorConfig {
                    spec: pc.spec,
                    avail: AvailabilityModelConfig::Replay {
                        trace,
                        tail: TailBehavior::ReclaimedForever,
                    },
                    believed: Some(pc.believed_chain()),
                }
            })
            .collect(),
        ncom: live.ncom,
    };
    let other = Simulation::run_seeded(
        &replay,
        &app,
        HeuristicKind::Random.build(SeedPath::root(9).rng()),
        SeedPath::root(0),
        SimOptions {
            max_slots: 10_000,
            ..SimOptions::default()
        },
    )
    .expect("valid");
    if other.finished() {
        assert!(other.makespan_or_cap() <= horizon as u64);
    }
}
