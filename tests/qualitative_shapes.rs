//! End-to-end checks of the paper's *qualitative* findings at test scale:
//! the informed heuristics beat the random families, speed-weighting helps
//! the random heuristics, and the volatile regime rewards failure-awareness.
//! Seeds are fixed; the assertions use comfortable margins so they test the
//! phenomenon, not the noise.

use volatile_grid::exp::campaign::{run_campaign, CampaignConfig};
use volatile_grid::exp::scenario::ScenarioParams;
use volatile_grid::prelude::*;
use volatile_grid::sched::HeuristicKind as HK;

fn small_campaign(cells: &[ScenarioParams], heuristics: Vec<HK>) -> Vec<(HK, f64, u64)> {
    let cfg = CampaignConfig {
        heuristics,
        scenarios_per_cell: 4,
        trials: 2,
        master_seed: 20260610,
        parallelism: ParallelismConfig::Auto,
        sim: SimOptions::default(),
        keep_outcomes: false,
    };
    let result = run_campaign(cells, &cfg);
    result
        .summarize()
        .into_iter()
        .map(|s| (s.kind, s.dfb.mean(), s.wins))
        .collect()
}

fn dfb_of(results: &[(HK, f64, u64)], kind: HK) -> f64 {
    results
        .iter()
        .find(|(k, _, _)| *k == kind)
        .map(|(_, d, _)| *d)
        .expect("kind present")
}

/// A small volatile cell (p reduced to keep test runtime sane).
fn volatile_cell() -> ScenarioParams {
    ScenarioParams {
        p: 10,
        iterations: 4,
        ..ScenarioParams::paper(10, 5, 6)
    }
}

#[test]
fn informed_heuristics_beat_random_families() {
    let results = small_campaign(
        &[volatile_cell()],
        vec![HK::Emct, HK::Mct, HK::Ud, HK::Random, HK::Random2],
    );
    let emct = dfb_of(&results, HK::Emct);
    let mct = dfb_of(&results, HK::Mct);
    let random = dfb_of(&results, HK::Random);
    assert!(
        emct < random && mct < random,
        "EMCT {emct:.2} / MCT {mct:.2} should beat Random {random:.2}"
    );
    // The greedy heuristics collect essentially all wins.
    let random_wins: u64 = results
        .iter()
        .filter(|(k, _, _)| matches!(k, HK::Random | HK::Random2))
        .map(|(_, _, w)| *w)
        .sum();
    let greedy_wins: u64 = results
        .iter()
        .filter(|(k, _, _)| matches!(k, HK::Emct | HK::Mct | HK::Ud))
        .map(|(_, _, w)| *w)
        .sum();
    assert!(
        greedy_wins > random_wins,
        "greedy {greedy_wins} vs random {random_wins}"
    );
}

#[test]
fn speed_weighting_helps_random_heuristics() {
    // The paper: "Randomxw always outperforms Randomx". At test scale the
    // per-pair gap can drown in noise, so sample a bit more and compare the
    // pooled weighted-vs-unweighted means.
    let cfg = CampaignConfig {
        heuristics: vec![HK::Random1, HK::Random1w, HK::Random3, HK::Random3w],
        scenarios_per_cell: 12,
        trials: 2,
        master_seed: 20260610,
        parallelism: ParallelismConfig::Auto,
        sim: SimOptions::default(),
        keep_outcomes: false,
    };
    let result = run_campaign(&[volatile_cell()], &cfg);
    let results: Vec<(HK, f64, u64)> = result
        .summarize()
        .into_iter()
        .map(|s| (s.kind, s.dfb.mean(), s.wins))
        .collect();
    let weighted = dfb_of(&results, HK::Random1w) + dfb_of(&results, HK::Random3w);
    let unweighted = dfb_of(&results, HK::Random1) + dfb_of(&results, HK::Random3);
    assert!(
        weighted < unweighted,
        "pooled weighted {weighted:.2} should beat unweighted {unweighted:.2}: {results:?}"
    );
}

#[test]
fn failure_awareness_pays_in_the_volatile_regime() {
    // At large wmin (many state transitions per task), EMCT must beat MCT
    // on average — the Figure-2 crossover. Aggregate over two volatile
    // cells for stability.
    let cells = [
        ScenarioParams {
            p: 10,
            iterations: 4,
            ..ScenarioParams::paper(10, 5, 8)
        },
        ScenarioParams {
            p: 10,
            iterations: 4,
            ..ScenarioParams::paper(20, 5, 10)
        },
    ];
    let results = small_campaign(&cells, vec![HK::Emct, HK::Mct]);
    let emct = dfb_of(&results, HK::Emct);
    let mct = dfb_of(&results, HK::Mct);
    assert!(
        emct < mct,
        "volatile regime should favor EMCT: EMCT {emct:.2} vs MCT {mct:.2}"
    );
}

#[test]
fn all_17_heuristics_survive_a_full_cell() {
    // Smoke: the complete roster finishes a (tiny) cell and produces a
    // coherent summary.
    let cell = ScenarioParams {
        p: 8,
        iterations: 3,
        ..ScenarioParams::paper(5, 5, 2)
    };
    let results = small_campaign(&[cell], HK::ALL.to_vec());
    assert_eq!(results.len(), 17);
    for (kind, dfb, _) in &results {
        assert!(dfb.is_finite(), "{kind}: dfb {dfb}");
        assert!(*dfb >= 0.0);
    }
}
