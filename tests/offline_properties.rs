//! Cross-solver properties of the off-line toolkit: the exact
//! branch-and-bound, the provably-optimal MCT (Proposition 2), and the
//! schedule validator must all agree where their domains overlap.

use proptest::prelude::*;
use volatile_grid::offline::{bnb, mct, OfflineInstance};
use volatile_grid::prelude::*;

/// Random small 2-state instances (sized for the exact solver).
fn arb_instance() -> impl Strategy<Value = OfflineInstance> {
    (
        1usize..=3, // m
        0u64..=2,   // t_prog
        0u64..=2,   // t_data
        1u64..=2,   // w
        1usize..=2, // ncom
        proptest::collection::vec(
            proptest::collection::vec(0usize..2, 10..=14), // traces (u/r)
            1..=2,
        ),
    )
        .prop_map(|(m, t_prog, t_data, w, ncom, raw)| {
            let traces: Vec<Trace> = raw
                .iter()
                .map(|codes| {
                    codes
                        .iter()
                        .map(|&c| {
                            if c == 0 {
                                ProcState::Up
                            } else {
                                ProcState::Reclaimed
                            }
                        })
                        .collect()
                })
                .collect();
            let horizon = traces.iter().map(|t| t.len()).min().unwrap_or(0) as u64;
            OfflineInstance::uniform(m, t_prog, t_data, w, Some(ncom), horizon, traces)
        })
}

const BUDGET: usize = 3_000_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bnb_never_beats_physics(inst in arb_instance()) {
        if let Ok(Some(mk)) = bnb::min_makespan(&inst, BUDGET) {
            // Absolute lower bound: the program, one data file and one
            // compute burst must fit sequentially.
            let lower = inst.t_prog + inst.t_data + inst.w[0];
            prop_assert!(mk >= lower, "makespan {mk} < physical bound {lower}");
            prop_assert!(mk <= inst.horizon);
        }
    }

    #[test]
    fn bnb_with_slack_channels_matches_optimal_mct(inst in arb_instance()) {
        // With ncom = p the channel bound binds nothing on these instances;
        // B&B must then agree with Proposition-2-optimal MCT.
        let mut unbounded = inst.clone();
        unbounded.ncom = None;
        let mct_mk = mct::mct_infinite(&unbounded).map(|s| s.makespan);

        let mut slack = inst.clone();
        slack.ncom = Some(inst.p());
        // Budget exhaustion (rare at these sizes) skips the comparison.
        if let Ok(bnb_mk) = bnb::min_makespan(&slack, BUDGET) {
            prop_assert_eq!(bnb_mk, mct_mk);
        }
    }

    #[test]
    fn narrower_channel_never_helps(inst in arb_instance()) {
        // Monotonicity: ncom = 1 optimum ≥ ncom = p optimum.
        let mut narrow = inst.clone();
        narrow.ncom = Some(1);
        let mut wide = inst.clone();
        wide.ncom = Some(inst.p());
        if let (Ok(Some(a)), Ok(Some(b))) = (
            bnb::min_makespan(&narrow, BUDGET),
            bnb::min_makespan(&wide, BUDGET),
        ) {
            prop_assert!(a >= b, "narrow {a} < wide {b}");
        }
    }

    #[test]
    fn mct_schedules_validate_and_match(inst in arb_instance()) {
        let mut unbounded = inst.clone();
        unbounded.ncom = None;
        if let Some(sol) = mct::mct_infinite(&unbounded) {
            let schedule = mct::materialize(&unbounded, &sol.assignment)
                .expect("solution materializes");
            let completion = schedule.validate(&unbounded);
            prop_assert_eq!(completion, Ok(sol.makespan));
        }
    }

    #[test]
    fn longer_horizon_never_hurts(inst in arb_instance()) {
        // Feasibility is monotone in the deadline.
        let full = bnb::feasible_within(&inst, inst.horizon, BUDGET);
        let half = bnb::feasible_within(&inst, inst.horizon / 2, BUDGET);
        if let (Ok(f), Ok(h)) = (full, half) {
            prop_assert!(!h || f, "feasible at half but not full horizon");
        }
    }
}
