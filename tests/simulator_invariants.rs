//! Cross-crate property tests: the simulator's reports must be internally
//! consistent on randomized platforms, and identical seeds must yield
//! identical runs regardless of heuristic internals.

use proptest::prelude::*;
use volatile_grid::prelude::*;

/// Builds a random paper-style Markov platform.
fn platform(p: usize, ncom: usize, seed: u64) -> PlatformConfig {
    let mut rng = SeedPath::root(seed).rng();
    PlatformConfig {
        processors: (0..p)
            .map(|_| {
                let chain = AvailabilityChain::sample_paper(&mut rng, 0.88, 0.99);
                let w = rng.u64_range_inclusive(1, 8);
                ProcessorConfig::markov(w, chain, StartPolicy::Up)
            })
            .collect(),
        ncom,
    }
}

fn run(
    platform: &PlatformConfig,
    app: &AppConfig,
    kind: HeuristicKind,
    trace_seed: u64,
    replication: bool,
) -> SimReport {
    Simulation::run_seeded(
        platform,
        app,
        kind.build(SeedPath::root(1).rng()),
        SeedPath::root(trace_seed),
        SimOptions {
            max_slots: 150_000,
            replication,
            max_extra_replicas: 2,
            record_timeline: false,
            placement_budget: PlacementBudget::Uncapped,
        },
    )
    .expect("valid configuration")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn report_accounting_is_consistent(
        p in 2usize..8,
        ncom in 1usize..4,
        m in 1usize..10,
        iters in 1u64..4,
        t_prog in 0u64..6,
        t_data in 0u64..4,
        seed in 0u64..1000,
        kind_idx in 0usize..17,
    ) {
        let platform = platform(p, ncom, seed);
        let app = AppConfig {
            tasks_per_iteration: m,
            iterations: iters,
            t_prog,
            t_data,
        };
        let kind = HeuristicKind::ALL[kind_idx];
        let r = run(&platform, &app, kind, seed.wrapping_add(13), true);

        // State occupancy covers exactly p worker-slots per simulated slot.
        let occupancy: u64 = r.counters.state_slots.iter().sum();
        prop_assert_eq!(occupancy, r.slots_run * p as u64);

        // Completion accounting.
        if r.finished() {
            prop_assert_eq!(r.completed_iterations, iters);
            prop_assert_eq!(r.counters.tasks_completed, m as u64 * iters);
            prop_assert_eq!(r.makespan, Some(r.slots_run));
            prop_assert_eq!(r.iteration_completed_at.len() as u64, iters);
            // Iteration completions are strictly increasing.
            for w in r.iteration_completed_at.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        } else {
            prop_assert!(r.completed_iterations < iters);
        }
        prop_assert_eq!(r.counters.copies_completed, r.counters.tasks_completed);

        // Bandwidth can never exceed capacity.
        prop_assert!(r.mean_bandwidth_utilization <= 1.0 + 1e-12);

        // Channel-slots are bounded by slots × ncom.
        let channel_slots = r.counters.prog_channel_slots + r.counters.data_channel_slots;
        prop_assert!(channel_slots <= r.slots_run * ncom as u64);
    }

    #[test]
    fn determinism_across_reruns(
        seed in 0u64..500,
        kind_idx in 0usize..17,
    ) {
        let platform = platform(4, 2, seed);
        let app = AppConfig {
            tasks_per_iteration: 5,
            iterations: 2,
            t_prog: 4,
            t_data: 1,
        };
        let kind = HeuristicKind::ALL[kind_idx];
        let a = run(&platform, &app, kind, seed, true);
        let b = run(&platform, &app, kind, seed, true);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn trace_seed_controls_availability_not_heuristic(
        seed in 0u64..300,
    ) {
        // Two heuristics, same trace seed: state occupancies over the same
        // number of slots must match slot-for-slot; we verify by running the
        // *same* heuristic under different scheduler seeds — availability
        // (and hence the whole run, for deterministic greedy heuristics)
        // is unchanged.
        let platform = platform(5, 2, seed);
        let app = AppConfig {
            tasks_per_iteration: 6,
            iterations: 2,
            t_prog: 5,
            t_data: 1,
        };
        let mk = |sched_seed: u64| {
            Simulation::run_seeded(
                &platform,
                &app,
                HeuristicKind::EmctStar.build(SeedPath::root(sched_seed).rng()),
                SeedPath::root(seed),
                SimOptions::default(),
            )
            .expect("valid")
        };
        // EMCT* is deterministic: scheduler seed is irrelevant.
        prop_assert_eq!(mk(1), mk(999));
    }

    #[test]
    fn replication_never_breaks_completion(
        seed in 0u64..200,
        m in 1usize..6,
    ) {
        let platform = platform(5, 2, seed);
        let app = AppConfig {
            tasks_per_iteration: m,
            iterations: 2,
            t_prog: 3,
            t_data: 1,
        };
        let with = run(&platform, &app, HeuristicKind::Emct, seed, true);
        let without = run(&platform, &app, HeuristicKind::Emct, seed, false);
        // Both must finish on these mild platforms; replication must never
        // leave an iteration incomplete.
        prop_assert!(with.finished());
        prop_assert!(without.finished());
        prop_assert_eq!(with.counters.tasks_completed, without.counters.tasks_completed);
    }
}
