//! Property tests for barrier reconfiguration and co-scheduling: random
//! shrink/grow under [`ReconfigPolicy::Moldable`] must conserve tasks
//! (no drop, no double-complete), and the `Fixed` policy driven through the
//! multi-application API must stay bit-identical to the pre-refactor
//! single-application engine.
//!
//! The strongest conservation checks are the engine's own debug assertions
//! (every barrier asserts the finished iteration drained completely and the
//! resized pool holds exactly `m` tasks); these properties run in the debug
//! profile, so each random trajectory exercises them thousands of times.
//! On top of that, the observable reports are checked for closed accounting.

use proptest::prelude::*;
use volatile_grid::prelude::*;

/// Builds a random paper-style Markov platform. Diagonals down at 0.85 on
/// purpose: frequent state churn makes the barrier's UP count move, which is
/// what drives Moldable shrinks and grows.
fn platform(p: usize, ncom: usize, seed: u64) -> PlatformConfig {
    let mut rng = SeedPath::root(seed).rng();
    PlatformConfig {
        processors: (0..p)
            .map(|_| {
                let chain = AvailabilityChain::sample_paper(&mut rng, 0.85, 0.99);
                let w = rng.u64_range_inclusive(1, 8);
                ProcessorConfig::markov(w, chain, StartPolicy::Up)
            })
            .collect(),
        ncom,
    }
}

fn options(replication: bool) -> SimOptions {
    SimOptions {
        max_slots: 150_000,
        replication,
        max_extra_replicas: 2,
        record_timeline: false,
        placement_budget: PlacementBudget::Uncapped,
    }
}

fn run_multi(
    platform: &PlatformConfig,
    specs: &[AppSpec],
    share: SharePolicy,
    kind: HeuristicKind,
    trace_seed: u64,
    replication: bool,
) -> MultiReport {
    Simulation::run_multi_seeded(
        platform,
        specs,
        share,
        kind.build(SeedPath::root(1).rng()),
        SeedPath::root(trace_seed),
        options(replication),
    )
    .expect("valid configuration")
}

/// Closed accounting every multi-app report must satisfy, finished or not.
fn check_accounting(r: &MultiReport, specs: &[AppSpec]) {
    prop_assert_eq!(r.apps.len(), specs.len());
    // No drop, no double-complete: the shared completion counter must be
    // exactly the sum of the per-app credits.
    let per_app_total: u64 = r.apps.iter().map(|a| a.tasks_completed).sum();
    prop_assert_eq!(r.combined.counters.tasks_completed, per_app_total);
    let per_app_iters: u64 = r.apps.iter().map(|a| a.completed_iterations).sum();
    prop_assert_eq!(r.combined.completed_iterations, per_app_iters);
    // The combined barrier record is the (slot-ordered) merge of the
    // per-app records.
    let mut merged: Vec<Slot> = r
        .apps
        .iter()
        .flat_map(|a| a.iteration_completed_at.iter().copied())
        .collect();
    merged.sort_unstable();
    let mut combined = r.combined.iteration_completed_at.clone();
    combined.sort_unstable();
    prop_assert_eq!(combined, merged);
    for (a, spec) in r.apps.iter().zip(specs) {
        prop_assert_eq!(
            a.iteration_completed_at.len() as u64,
            a.completed_iterations
        );
        // Per-app barriers are strictly increasing (two iterations of one
        // app can never end in the same slot).
        for w in a.iteration_completed_at.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        if a.finished() {
            prop_assert_eq!(a.completed_iterations, spec.config.iterations);
            prop_assert_eq!(a.makespan, a.iteration_completed_at.last().map(|s| s + 1));
        } else {
            prop_assert!(a.completed_iterations < spec.config.iterations);
            prop_assert_eq!(a.makespan, None);
        }
    }
    // The combined makespan is set iff every app finished, and then equals
    // the last app's.
    if r.apps.iter().all(AppReport::finished) {
        prop_assert_eq!(
            r.combined.makespan,
            r.apps.iter().filter_map(|a| a.makespan).max()
        );
    } else {
        prop_assert_eq!(r.combined.makespan, None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random shrink/grow: a moldable app on a churning platform re-picks
    /// its task count at every barrier. Tasks must be conserved — each
    /// finished iteration contributes exactly its (resized) `m` completions,
    /// nothing is dropped or double-completed — and the run must still
    /// finish and satisfy closed accounting.
    #[test]
    fn moldable_resizing_conserves_tasks(
        p in 3usize..8,
        ncom in 1usize..4,
        m0 in 1usize..10,
        iters in 2u64..6,
        num in 1u32..4,
        den in 1u32..3,
        max_tasks in 4usize..16,
        seed in 0u64..1000,
        kind_idx in 0usize..17,
        rep_idx in 0usize..2,
    ) {
        let replication = rep_idx == 1;
        let params = MoldableParams {
            tasks_per_up_num: num,
            tasks_per_up_den: den,
            min_tasks: 1,
            max_tasks,
        };
        let app = AppConfig {
            tasks_per_iteration: m0,
            iterations: iters,
            t_prog: 3,
            t_data: 1,
        };
        let specs = [AppSpec::moldable(app, params)];
        let platform = platform(p, ncom, seed);
        let kind = HeuristicKind::ALL[kind_idx];
        let r = run_multi(&platform, &specs, SharePolicy::default(), kind, seed, replication);
        check_accounting(&r, &specs);
        let a = &r.apps[0];
        prop_assert!(a.finished(), "mild platform, generous cap: must finish");
        // Every iteration's size was clamped to [1, max_tasks]; the first
        // used the configured m0 (reconfiguration happens at barriers only).
        prop_assert!(a.final_m >= 1 && a.final_m <= max_tasks);
        let lo = iters - 1 + m0 as u64; // first iteration is m0, rest ≥ 1
        let hi = m0 as u64 + (iters - 1) * max_tasks as u64;
        prop_assert!(
            a.tasks_completed >= lo && a.tasks_completed <= hi,
            "task credit {} outside the reachable [{}, {}]",
            a.tasks_completed, lo, hi
        );
        // Determinism across reruns, resizes included.
        let again = run_multi(&platform, &specs, SharePolicy::default(), kind, seed, replication);
        prop_assert_eq!(r, again);
    }

    /// A moldable app whose clamp pins the pick to the configured size
    /// (`min == max == m`) must be **bit-identical** to `Fixed`: the barrier
    /// takes the exact reset path whenever the pick equals the current size.
    #[test]
    fn pinned_moldable_is_bit_identical_to_fixed(
        p in 3usize..8,
        m in 1usize..10,
        iters in 1u64..5,
        seed in 0u64..1000,
        kind_idx in 0usize..17,
    ) {
        let app = AppConfig {
            tasks_per_iteration: m,
            iterations: iters,
            t_prog: 3,
            t_data: 1,
        };
        let params = MoldableParams {
            tasks_per_up_num: 1,
            tasks_per_up_den: 1,
            min_tasks: m,
            max_tasks: m,
        };
        let platform = platform(p, 2, seed);
        let kind = HeuristicKind::ALL[kind_idx];
        let fixed = run_multi(
            &platform, &[AppSpec::rigid(app)], SharePolicy::default(), kind, seed, true,
        );
        let pinned = run_multi(
            &platform, &[AppSpec::moldable(app, params)], SharePolicy::default(), kind, seed, true,
        );
        prop_assert_eq!(fixed, pinned);
    }

    /// `Fixed` through the multi-application API is bit-identical to the
    /// pre-refactor single-application engine on random small
    /// configurations (the big fixed grid lives in `soa_equivalence`).
    #[test]
    fn fixed_multi_api_matches_single_app_engine(
        p in 2usize..8,
        ncom in 1usize..4,
        m in 1usize..10,
        iters in 1u64..4,
        seed in 0u64..1000,
        kind_idx in 0usize..17,
        rep_idx in 0usize..2,
    ) {
        let replication = rep_idx == 1;
        let app = AppConfig {
            tasks_per_iteration: m,
            iterations: iters,
            t_prog: 3,
            t_data: 1,
        };
        let platform = platform(p, ncom, seed);
        let kind = HeuristicKind::ALL[kind_idx];
        let single = Simulation::run_seeded(
            &platform,
            &app,
            kind.build(SeedPath::root(1).rng()),
            SeedPath::root(seed),
            options(replication),
        ).expect("valid configuration");
        let multi = run_multi(
            &platform, &[AppSpec::rigid(app)], SharePolicy::default(), kind, seed, replication,
        );
        prop_assert_eq!(multi.combined, single);
    }

    /// Co-scheduled rosters (2–3 apps, mixed rigid/moldable, every share
    /// policy) keep closed accounting and deterministic reruns.
    #[test]
    fn coscheduled_rosters_keep_closed_accounting(
        p in 3usize..8,
        napps in 2usize..4,
        m in 1usize..7,
        iters in 1u64..4,
        w2 in 1u32..5,
        seed in 0u64..1000,
        kind_idx in 0usize..17,
        share_idx in 0usize..3,
    ) {
        let share = [
            SharePolicy::EqualSplit,
            SharePolicy::Weighted,
            SharePolicy::StrictPriority,
        ][share_idx];
        let app = AppConfig {
            tasks_per_iteration: m,
            iterations: iters,
            t_prog: 3,
            t_data: 1,
        };
        let mut specs = vec![AppSpec::weighted(app, w2)];
        let params = MoldableParams {
            tasks_per_up_num: 1,
            tasks_per_up_den: 1,
            min_tasks: 1,
            max_tasks: 8,
        };
        specs.push(AppSpec::moldable(app, params));
        if napps > 2 {
            specs.push(AppSpec::rigid(AppConfig {
                tasks_per_iteration: m + 1,
                ..app
            }));
        }
        let platform = platform(p, 2, seed);
        let kind = HeuristicKind::ALL[kind_idx];
        let r = run_multi(&platform, &specs, share, kind, seed, true);
        check_accounting(&r, &specs);
        prop_assert!(
            r.apps.iter().all(AppReport::finished),
            "mild platform, generous cap: every app must finish"
        );
        let again = run_multi(&platform, &specs, share, kind, seed, true);
        prop_assert_eq!(r, again);
    }
}
