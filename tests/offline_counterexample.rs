//! The Section-4 counter-example: with bounded master bandwidth
//! (`ncom = 1`), greedy MCT is no longer optimal.
//!
//! Instance: `T_prog = T_data = 2`, two tasks, two same-speed processors
//! (`w = 2`), traces `S1 = uuuuuurrr`, `S2 = ruuuuuuuu`. The optimum waits
//! one slot and serves `P2`, finishing both tasks in 9 slots; the on-line
//! MCT heuristic greedily commits `P1` and cannot recover.

use volatile_grid::offline::bnb;
use volatile_grid::offline::OfflineInstance;
use volatile_grid::prelude::*;

fn counterexample_traces() -> (Trace, Trace) {
    (
        Trace::parse("uuuuuurrr").unwrap(),
        Trace::parse("ruuuuuuuu").unwrap(),
    )
}

#[test]
fn exact_optimum_is_nine_slots() {
    let (s1, s2) = counterexample_traces();
    let inst = OfflineInstance::uniform(2, 2, 2, 2, Some(1), 9, vec![s1, s2]);
    let optimum = bnb::min_makespan(&inst, 10_000_000)
        .expect("tiny instance")
        .expect("the paper's optimal schedule exists");
    assert_eq!(optimum, 9);

    // Tighter deadlines are infeasible.
    assert!(!bnb::feasible_within(&inst, 8, 10_000_000).unwrap());
}

#[test]
fn online_mct_fails_the_counterexample() {
    // Run the real on-line MCT heuristic in the simulator over replayed
    // traces. MCT estimates assuming processors stay UP, so it pins work on
    // P1, whose trace turns RECLAIMED forever — the run never completes
    // (without replication) while the clairvoyant optimum is 9 slots.
    let (s1, s2) = counterexample_traces();
    let platform = PlatformConfig {
        processors: vec![
            ProcessorConfig {
                spec: volatile_grid::platform::ProcessorSpec::new(2),
                avail: AvailabilityModelConfig::Replay {
                    trace: s1,
                    tail: TailBehavior::HoldLast, // r forever after slot 8
                },
                believed: None,
            },
            ProcessorConfig {
                spec: volatile_grid::platform::ProcessorSpec::new(2),
                avail: AvailabilityModelConfig::Replay {
                    trace: s2,
                    tail: TailBehavior::HoldLast, // u forever after slot 8
                },
                believed: None,
            },
        ],
        ncom: 1,
    };
    let app = AppConfig {
        tasks_per_iteration: 2,
        iterations: 1,
        t_prog: 2,
        t_data: 2,
    };
    let report = Simulation::run_seeded(
        &platform,
        &app,
        HeuristicKind::Mct.build(SeedPath::root(1).rng()),
        SeedPath::root(2), // ignored by replay sources
        SimOptions {
            max_slots: 200,
            replication: false,
            max_extra_replicas: 0,
            record_timeline: false,
            placement_budget: PlacementBudget::Uncapped,
        },
    )
    .unwrap();
    assert!(
        report.makespan_or_cap() > 9,
        "online MCT should be suboptimal here, got {report}"
    );
}

#[test]
fn replication_rescues_online_mct() {
    // Same instance with the Section-6.1 replication policy: the idle
    // processor picks up a replica, bounding the damage.
    let (s1, s2) = counterexample_traces();
    let platform = PlatformConfig {
        processors: vec![
            ProcessorConfig {
                spec: volatile_grid::platform::ProcessorSpec::new(2),
                avail: AvailabilityModelConfig::Replay {
                    trace: s1,
                    tail: TailBehavior::HoldLast,
                },
                believed: None,
            },
            ProcessorConfig {
                spec: volatile_grid::platform::ProcessorSpec::new(2),
                avail: AvailabilityModelConfig::Replay {
                    trace: s2,
                    tail: TailBehavior::HoldLast,
                },
                believed: None,
            },
        ],
        ncom: 1,
    };
    let app = AppConfig {
        tasks_per_iteration: 2,
        iterations: 1,
        t_prog: 2,
        t_data: 2,
    };
    let without = Simulation::run_seeded(
        &platform,
        &app,
        HeuristicKind::Mct.build(SeedPath::root(1).rng()),
        SeedPath::root(2),
        SimOptions {
            max_slots: 500,
            replication: false,
            max_extra_replicas: 0,
            record_timeline: false,
            placement_budget: PlacementBudget::Uncapped,
        },
    )
    .unwrap();
    let with = Simulation::run_seeded(
        &platform,
        &app,
        HeuristicKind::Mct.build(SeedPath::root(1).rng()),
        SeedPath::root(2),
        SimOptions {
            max_slots: 500,
            replication: true,
            max_extra_replicas: 2,
            record_timeline: false,
            placement_budget: PlacementBudget::Uncapped,
        },
    )
    .unwrap();
    assert!(with.finished(), "replication must complete the iteration");
    assert!(
        with.makespan_or_cap() <= without.makespan_or_cap(),
        "replication never hurts here: {} vs {}",
        with.makespan_or_cap(),
        without.makespan_or_cap()
    );
}

#[test]
fn bnb_requires_down_splitting_first() {
    // The exact solver does not model in-place program loss, so it rejects
    // raw 3-state instances; the Section-4 transform makes them solvable.
    let inst3 = OfflineInstance::uniform(
        2,
        1,
        1,
        2,
        Some(1),
        12,
        vec![
            Trace::parse("uuuduuuuuuuu").unwrap(),
            Trace::parse("uuuuuuduuuuu").unwrap(),
        ],
    );
    assert_eq!(
        bnb::min_makespan(&inst3, 1_000_000),
        Err(volatile_grid::offline::bnb::BnbError::ContainsDown)
    );
    let inst2 = inst3.split_down();
    assert!(inst2.is_two_state());
    // Splitting yields 4 crash-free virtual processors; both tasks fit.
    assert_eq!(inst2.p(), 4);
    let optimum = bnb::min_makespan(&inst2, 10_000_000)
        .expect("small instance")
        .expect("feasible");
    // P1's prefix (uuu) can do prog 0 + data 1 + compute… w=2 needs 2 UP
    // slots: prog@0, data@1, compute@2 only 1 slot left — so the suffixes
    // carry the work; sanity: optimum is within the horizon and ≥ the
    // single-task lower bound Tprog + Tdata + w = 4.
    assert!((4..=12).contains(&optimum), "optimum {optimum}");
}
