//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config types so
//! downstream users can persist them, but nothing inside the workspace
//! serializes anything. With no network access to fetch the real serde,
//! this proc-macro crate accepts the same derive spelling and expands to
//! nothing. Swap the workspace `serde` entry back to crates.io to get real
//! serialization support.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
