//! Minimal, offline stand-in for the `rand` crate.
//!
//! The workspace's own generators (`vg_des::rng::StreamRng`) implement the
//! algorithms; this crate only supplies the trait vocabulary (`RngCore`,
//! `SeedableRng`, `Rng`) plus uniform range sampling, matching the rand 0.9
//! API surface actually used here. It exists because the build environment
//! has no network access; swap the workspace `rand` entry back to crates.io
//! to use the real thing.

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 (the
    /// construction rand itself documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Uniform sampling of a value from a range type.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply bounded draw (Lemire, without the
                // rejection step — bias is negligible for a test shim).
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Draws a bool with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let y: u32 = rng.random_range(0..10);
            assert!(y < 10);
            let z: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct S([u8; 32]);
        impl SeedableRng for S {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                S(seed)
            }
        }
        assert_eq!(S::seed_from_u64(9).0, S::seed_from_u64(9).0);
        assert_ne!(S::seed_from_u64(9).0, S::seed_from_u64(10).0);
    }
}
