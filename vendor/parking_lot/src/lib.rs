//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind the poison-free `parking_lot` API used by
//! this workspace (`lock()` returning the guard directly, `into_inner()`).

/// A mutex that does not poison: a panicked holder simply releases the lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type; identical to the std guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
