//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses — the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], the [`proptest!`] test macro and the `prop_assert*`
//! macros — as a deterministic random-case engine *without shrinking*. Each
//! generated case that fails panics with the ordinary `assert!` message, so
//! failures are reproducible (the RNG is seeded from the test name) but not
//! minimized. Swap the workspace `proptest` entry back to crates.io for the
//! full engine.

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The deterministic generation RNG (SplitMix64, seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test; equal names give equal streams.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u128) -> u128 {
        assert!(n > 0);
        // Widening multiply; bias is irrelevant for test-case generation.
        let x = u128::from(self.next_u64());
        (x * n) >> 64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `elem`, sized within `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

/// The usual bulk import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, f64)> {
        (1u64..10, 0.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..7, y in -2i32..=2) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in collection::vec(0usize..3, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&c| c < 3));
        }

        #[test]
        fn map_and_tuples_compose(p in pair().prop_map(|(a, b)| a as f64 + b)) {
            prop_assert!((1.0..11.0).contains(&p));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let s = collection::vec(0usize..100, 10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
