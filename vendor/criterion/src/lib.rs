//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, `BatchSize` and the
//! `criterion_group!`/`criterion_main!` macros — backed by a plain
//! wall-clock sampler. Each benchmark warms up, then takes `sample_size`
//! samples within roughly `measurement_time`, and prints the median, min
//! and max time per iteration. No statistical analysis, no HTML reports.
//!
//! Environment knobs:
//! * `CRITERION_SAMPLE_SCALE` — multiply warm-up/measurement budgets by this
//!   float (e.g. `0.1` for a quick smoke pass in CI).

use std::fmt::Display;
use std::time::{Duration, Instant};

fn time_scale() -> f64 {
    std::env::var("CRITERION_SAMPLE_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// How `iter_batched` amortizes setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many iterations per setup.
    SmallInput,
    /// Large inputs: fewer iterations per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Mean nanoseconds per iteration of each sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration, sample_size: usize) -> Self {
        let scale = time_scale();
        Self {
            warm_up: warm_up.mul_f64(scale),
            measurement: measurement.mul_f64(scale),
            sample_size: sample_size.max(1),
            samples: Vec::new(),
        }
    }

    /// Times `f`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples
                .push(t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut timed = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            timed += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = timed.as_secs_f64() / warm_iters as f64;
        let budget = self.measurement.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);
        for _ in 0..self.sample_size {
            let mut sample = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                sample += t.elapsed();
            }
            self.samples
                .push(sample.as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.warm_up, self.measurement, self.sample_size);
        f(&mut b);
        b.report(&full);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.warm_up, self.measurement, self.sample_size);
        f(&mut b, input);
        b.report(&full);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            sample_size: 100,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark with default settings.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().to_string();
        let mut b = Bencher::new(Duration::from_secs(3), Duration::from_secs(5), 100);
        f(&mut b);
        b.report(&id);
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching criterion's path for `black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(Duration::from_millis(1), Duration::from_millis(5), 5);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(1), Duration::from_millis(2), 3);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
