//! # volatile-grid
//!
//! A full Rust implementation of Casanova, Dufossé, Robert & Vivien,
//! *"Scheduling Parallel Iterative Applications on Volatile Resources"*
//! (IPDPS 2011): the 3-state volatile-processor platform model, the Markov
//! availability mathematics of Section 5 (Lemma 1, Theorem 2, `P_UD`), all
//! 17 scheduling heuristics of Section 6, a slot-level simulator for the
//! bounded-multi-port master–worker model of Section 3, the off-line
//! complexity toolkit of Section 4 (DOWN-splitting, optimal MCT for
//! unbounded bandwidth, exact branch-and-bound, the executable Theorem-1
//! 3-SAT reduction), and the complete evaluation campaign of Section 7
//! (Tables 1–3, Figures 1–2).
//!
//! This façade crate re-exports the workspace members under stable names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`des`] | `vg-des` | deterministic RNG streams, event calendar, statistics, thread pool |
//! | [`markov`] | `vg-markov` | Markov chains, the availability model, closed forms |
//! | [`platform`] | `vg-platform` | processors, traces, bounded multi-port network, configs |
//! | [`sched`] | `vg-core` | the 17 heuristics (`Random*`, MCT/EMCT/LW/UD ± `*`) |
//! | [`sim`] | `vg-sim` | the slot-level simulator |
//! | [`offline`] | `vg-offline` | Section-4 complexity toolkit |
//! | [`exp`] | `vg-exp` | scenario grids, campaigns, table/figure binaries |
//!
//! ## Quickstart
//!
//! ```
//! use volatile_grid::prelude::*;
//!
//! // A small volatile platform sampled the paper's way.
//! let mut rng = SeedPath::root(1).rng();
//! let platform = PlatformConfig {
//!     processors: (0..4)
//!         .map(|_| ProcessorConfig::markov(
//!             3,
//!             AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99),
//!             StartPolicy::Up,
//!         ))
//!         .collect(),
//!     ncom: 2,
//! };
//! let app = AppConfig { tasks_per_iteration: 6, iterations: 2, t_prog: 5, t_data: 1 };
//!
//! let report = Simulation::run_seeded(
//!     &platform,
//!     &app,
//!     HeuristicKind::EmctStar.build(SeedPath::root(2).rng()),
//!     SeedPath::root(3),
//!     SimOptions::default(),
//! ).unwrap();
//! assert!(report.finished());
//! ```

pub use vg_core as sched;
pub use vg_des as des;
pub use vg_exp as exp;
pub use vg_markov as markov;
pub use vg_offline as offline;
pub use vg_platform as platform;
pub use vg_sim as sim;

/// One-stop imports for applications built on the library.
pub mod prelude {
    pub use vg_core::{
        HeuristicKind, OwnedSchedView, SchedView, SchedViewBuilder, Scheduler, SharePolicy,
    };
    pub use vg_des::prelude::*;
    pub use vg_markov::{
        AvailabilityChain, AvailabilityStream, ChainStats, OutageChain, ProcState,
    };
    pub use vg_platform::volatility::{CorrelatedModel, DiurnalSpec, ScriptedOverlay};
    pub use vg_platform::{
        AppConfig, AvailabilityModelConfig, CompiledScript, FaultScript, PlatformConfig,
        ProcessorConfig, ProcessorId, StartPolicy, TailBehavior, Trace,
    };
    pub use vg_sim::{
        AppReport, AppSpec, MoldableParams, MultiReport, PlacementBudget, ReconfigPolicy,
        SimOptions, SimReport, Simulation,
    };
}
